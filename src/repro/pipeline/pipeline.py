"""The Pipeline: one spec-driven entry point for every run.

``repro`` grew its execution machinery layer by layer — columnar
streams, the single-pass :class:`~repro.engine.runner.FanoutRunner`,
the multi-core :class:`~repro.engine.sharded.ShardedRunner`, the window
policies — and every caller (CLI, benchmarks, examples) used to
hand-assemble them.  :class:`Pipeline` replaces that glue: a validated
:class:`~repro.pipeline.spec.PipelineSpec` (source × window × backend ×
processors) is the *only* thing a caller writes, whether fluently::

    result = (Pipeline.builder()
              .generator("zipf", n=256, m=30000, d=200)
              .processor("insertion-only", n=256, d=200, alpha=2)
              .window("sliding", window=4096)
              .build()
              .run())

or declaratively from JSON::

    pipeline = Pipeline.from_dict(json.load(open("job.json")))
    report = pipeline.run().to_dict()

Construction validates the whole spec eagerly
(:func:`~repro.pipeline.spec.validate_spec`) and raises every conflict
at once; :meth:`Pipeline.run` then opens the source, resolves the
processors through the registry, executes on the requested backend and
returns a typed, JSON-serializable
:class:`~repro.pipeline.result.PipelineResult`.

Mid-stream probes: ``run(probe_every=N)`` snapshots every windowed
processor's :meth:`~repro.engine.windows.WindowedProcessor.query`
answer each ``N`` updates (quantized to chunk boundaries), surfacing
the smooth-histogram sliding window's query-at-any-point capability as
:class:`~repro.pipeline.result.ProbeRecord` rows on the result.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.engine.checkpoint import CheckpointStore
from repro.engine.faults import FaultPlan
from repro.engine.protocol import combined_routing, shard_routing_of
from repro.engine.runner import FANOUT_TAG, FanoutRunner, as_chunks
from repro.engine.sharded import (
    RUN_TAG,
    ShardedRunner,
    effective_cores as engine_effective_cores,
)
from repro.engine.windows import (
    DecayPolicy,
    SlidingPolicy,
    TumblingPolicy,
    WindowPolicy,
    WindowedProcessor,
)
from repro.pipeline.errors import PipelineValidationError, SpecError
from repro.pipeline.registry import (
    GENERATORS,
    PROCESSORS,
    RegistryWindowFactory,
)
from repro.pipeline.result import PipelineResult, ProbeRecord, RunReport
from repro.pipeline.spec import (
    CheckpointSpec,
    ExecSpec,
    PipelineSpec,
    ProcessorSpec,
    SourceSpec,
    WindowSpec,
    validate_spec,
)
from repro.streams.columnar import DEFAULT_CHUNK_SIZE, ColumnarEdgeStream
from repro.streams.stream import EdgeStream


def make_window_policy(window: WindowSpec) -> WindowPolicy:
    """The engine :class:`~repro.engine.windows.WindowPolicy` a
    validated :class:`WindowSpec` describes."""
    if window.policy == "tumbling":
        return TumblingPolicy(window.window)
    if window.policy == "sliding":
        return SlidingPolicy(window.window, bucket_ratio=window.bucket_ratio)
    if window.policy == "decay":
        return DecayPolicy(window.window, keep=window.keep)
    raise SpecError(f"unknown window policy {window.policy!r}")


@dataclass
class OpenSource:
    """A source spec resolved into something the engine can stream.

    Exactly one of ``stream`` (an in-memory
    :class:`~repro.streams.columnar.ColumnarEdgeStream`) and ``reader``
    (a memory-mapped
    :class:`~repro.streams.persist.ChunkedStreamReader`) is set.  The
    CLI pre-opens sources to print stats and derive data-dependent
    defaults before committing to a run, then hands the open source to
    :meth:`Pipeline.run` so the stream is built exactly once.
    """

    spec: SourceSpec
    stream: Optional[ColumnarEdgeStream] = None
    reader: Optional[Any] = None

    @property
    def n(self) -> int:
        return self.stream.n if self.stream is not None else self.reader.n

    @property
    def m(self) -> int:
        return self.stream.m if self.stream is not None else self.reader.m

    def __len__(self) -> int:
        target = self.stream if self.stream is not None else self.reader
        return len(target)

    @property
    def insertion_only(self) -> bool:
        target = self.stream if self.stream is not None else self.reader
        return target.insertion_only

    def chunk_source(self) -> Any:
        """The object to feed :func:`repro.engine.as_chunks`."""
        return self.stream if self.stream is not None else self.reader

    def describe(self) -> Dict[str, Any]:
        """JSON-compatible provenance for the run report."""
        out: Dict[str, Any] = {"kind": self.spec.kind}
        if self.spec.kind == "generator":
            out["generator"] = self.spec.generator
            out["params"] = dict(self.spec.params)
        elif self.spec.kind == "file":
            out["path"] = self.spec.path
            out["mmap"] = self.spec.mmap
        out["n"] = self.n
        out["m"] = self.m
        out["updates"] = len(self)
        return out


def open_source(spec: SourceSpec) -> OpenSource:
    """Materialise (or map) the stream a :class:`SourceSpec` names.

    Raises:
        SpecError: mmap requested on a v1 (text) stream file.
        StreamFormatError, OSError: the file is missing or malformed.
    """
    if spec.kind == "memory":
        stream = spec.stream
        if isinstance(stream, EdgeStream):
            stream = ColumnarEdgeStream.from_edge_stream(stream)
        return OpenSource(spec, stream=stream)
    if spec.kind == "generator":
        generated = GENERATORS.build(spec.generator, spec.params)
        if isinstance(generated, EdgeStream):
            generated = ColumnarEdgeStream.from_edge_stream(generated)
        return OpenSource(spec, stream=generated)
    # File source.
    from repro.streams.persist import ChunkedStreamReader, load_columnar

    if spec.mmap:
        reader = ChunkedStreamReader(
            spec.path,
            mmap=True,
            # Auto (None) readahead binds at the runner that knows its
            # access pattern; a bare reader prefetches only on request.
            readahead=bool(spec.readahead),
            readahead_depth=spec.readahead_depth,
        )
        if reader.version != 2:
            raise SpecError(
                f"mmap requires a v2 (NPZ) stream file, and {spec.path} "
                f"is v{reader.version}; convert with `persist convert`"
            )
        return OpenSource(spec, reader=reader)
    return OpenSource(spec, stream=load_columnar(spec.path))


def _open_file_header(spec: SourceSpec) -> OpenSource:
    """A metadata-only open of a file source: dimensions and length
    without materialising the columns (v2 archives are memory-mapped,
    v1 text parses incrementally)."""
    from repro.streams.persist import ChunkedStreamReader, detect_version

    reader = ChunkedStreamReader(
        spec.path,
        mmap=detect_version(spec.path) == 2,
        readahead=bool(spec.readahead),
        readahead_depth=spec.readahead_depth,
    )
    return OpenSource(spec, reader=reader)


class Pipeline:
    """A validated, executable, serializable pipeline description."""

    def __init__(self, spec: PipelineSpec) -> None:
        diagnostics = validate_spec(spec)
        if diagnostics:
            raise PipelineValidationError(diagnostics)
        self.spec = spec

    # ------------------------------------------------------------------
    # Construction: builder and (de)serialization.
    # ------------------------------------------------------------------

    @staticmethod
    def builder() -> "PipelineBuilder":
        return PipelineBuilder()

    def to_dict(self) -> Dict[str, Any]:
        return self.spec.to_dict()

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Pipeline":
        return Pipeline(PipelineSpec.from_dict(data))

    @staticmethod
    def from_json(text: str) -> "Pipeline":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"spec is not valid JSON: {error}") from error
        return Pipeline.from_dict(data)

    @staticmethod
    def from_spec_file(path: Union[str, Path]) -> "Pipeline":
        return Pipeline.from_json(Path(path).read_text(encoding="utf-8"))

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Pipeline) and self.spec == other.spec

    def __repr__(self) -> str:
        labels = [processor.effective_label for processor in self.spec.processors]
        return (
            f"Pipeline(source={self.spec.source.kind!r}, "
            f"processors={labels!r}, "
            f"window={getattr(self.spec.window, 'policy', None)!r}, "
            f"backend={self.spec.execution.backend!r}"
            f"x{self.spec.execution.workers})"
        )

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------

    def open_source(self) -> OpenSource:
        """Open this pipeline's source (see :func:`open_source`)."""
        return open_source(self.spec.source)

    def build_processors(self) -> Dict[str, Any]:
        """label -> live processor, windowed when the spec says so."""
        processors: Dict[str, Any] = {}
        window = self.spec.window
        for processor_spec in self.spec.processors:
            entry = PROCESSORS.get(processor_spec.name)
            if window is not None:
                inner_params = {
                    key: value
                    for key, value in processor_spec.params.items()
                    if key != entry.seed_param
                }
                processors[processor_spec.effective_label] = WindowedProcessor(
                    RegistryWindowFactory.of(processor_spec.name, inner_params),
                    make_window_policy(window),
                    seed=window.seed,
                )
            else:
                processors[processor_spec.effective_label] = entry.build(
                    processor_spec.params
                )
        return processors

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        source: Optional[OpenSource] = None,
        probe_every: Optional[int] = None,
        resume: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ) -> PipelineResult:
        """Execute the pipeline and return a :class:`PipelineResult`.

        Args:
            source: a pre-opened source (defaults to opening the
                spec's own); callers that inspect the stream first
                pass it here so it is built once.
            probe_every: snapshot every windowed processor's
                :meth:`~repro.engine.windows.WindowedProcessor.query`
                answer each ``probe_every`` updates (quantized to
                chunk boundaries).  Requires a window spec and the
                fanout backend — sharded state is distributed until
                the merge, so there is no mid-stream whole-answer to
                probe.
            resume: continue a checkpointed run from the snapshots in
                the spec's ``checkpoint.dir`` instead of starting over
                (requires a checkpoint spec).  When no checkpoint has
                been written yet — e.g. the previous run died before
                its first snapshot, or never started — the run simply
                starts fresh (and still checkpoints).  The resumed
                answers are bit-identical to an uninterrupted run.
            fault_plan: a deterministic
                :class:`~repro.engine.faults.FaultPlan` threaded into
                the execution engine (chaos testing; None = no faults).
        """
        spec = self.spec
        if probe_every is not None:
            if probe_every < 1:
                raise SpecError(
                    f"probe_every must be >= 1, got {probe_every}"
                )
            if spec.window is None:
                raise SpecError(
                    "probe_every requires a window spec; only windowed "
                    "processors answer mid-stream queries"
                )
            if spec.execution.backend != "fanout":
                raise SpecError(
                    f"probe_every requires the fanout backend, got "
                    f"{spec.execution.backend!r}; sharded/serial passes "
                    f"have no single mid-stream state to probe"
                )
            if spec.checkpoint is not None:
                raise SpecError(
                    "probe_every cannot be combined with checkpointing; "
                    "the probe loop bypasses the checkpointed drive loop"
                )
        if resume and spec.checkpoint is None:
            raise SpecError(
                "resume=True requires a checkpoint spec (the snapshots "
                "to resume from live in checkpoint.dir)"
            )
        if resume:
            # A resume with nothing to resume from degrades to a fresh
            # (checkpointed) run — the crash-before-first-snapshot case.
            tag = RUN_TAG if spec.execution.backend == "sharded" else FANOUT_TAG
            resume = CheckpointStore(spec.checkpoint.dir).has(tag)
        if source is not None:
            opened = source
        elif spec.source.kind == "file" and (
            spec.execution.backend == "sharded" or spec.checkpoint is not None
        ):
            # Sharded workers (and the checkpointed fanout drive loop)
            # read the file themselves; opening it here is for report
            # metadata only, so never materialise the columns (a
            # non-mmap eager load would double the I/O and pin a full
            # copy for the result's lifetime).
            opened = _open_file_header(spec.source)
        else:
            opened = self.open_source()
        processors = self.build_processors()
        execution = spec.execution
        checkpoint = spec.checkpoint
        chunk_size = spec.source.chunk_size
        probes: List[ProbeRecord] = []
        routing: Optional[Any] = None
        shard_retries = 0

        start = time.perf_counter()
        if execution.backend == "sharded":
            if resume:
                runner = ShardedRunner.resume(
                    checkpoint.dir,
                    source=spec.source.path,
                    fault_plan=fault_plan,
                )
                answers = runner.run()
            else:
                runner = ShardedRunner(
                    processors,
                    n_workers=execution.workers,
                    chunk_size=chunk_size,
                    mmap=spec.source.mmap,
                    readahead=spec.source.readahead,
                    readahead_depth=spec.source.readahead_depth,
                    retries=execution.retries,
                    timeout_s=execution.timeout_s,
                    on_failure=execution.on_failure,
                    checkpoint_dir=(
                        None if checkpoint is None else checkpoint.dir
                    ),
                    checkpoint_every=(
                        None if checkpoint is None else checkpoint.every
                    ),
                    fault_plan=fault_plan,
                )
                engine_source = (
                    Path(spec.source.path)
                    if spec.source.kind == "file"
                    else opened.stream
                )
                answers = runner.run(engine_source)
            merged = {label: runner[label] for label in runner.names()}
            routing = runner.routing()
            shard_retries = runner.retries_used
        elif execution.backend == "serial":
            for label, processor in processors.items():
                FanoutRunner(
                    {label: processor},
                    chunk_size=chunk_size,
                    fault_plan=fault_plan,
                ).process(opened.chunk_source())
            answers = {
                label: processor.finalize()
                for label, processor in processors.items()
            }
            merged = processors
            routing = self._static_routing(processors)
        else:
            if resume:
                runner = FanoutRunner.resume(
                    checkpoint.dir,
                    source=spec.source.path,
                    fault_plan=fault_plan,
                )
                answers = runner.run()
                merged = {label: runner[label] for label in runner.names()}
            else:
                runner = FanoutRunner(
                    processors,
                    chunk_size=chunk_size,
                    checkpoint_dir=(
                        None if checkpoint is None else checkpoint.dir
                    ),
                    checkpoint_every=(
                        None if checkpoint is None else checkpoint.every
                    ),
                    fault_plan=fault_plan,
                )
                if probe_every is not None:
                    self._run_with_probes(
                        runner, opened, processors, chunk_size, probe_every,
                        probes,
                    )
                    answers = runner.finalize()
                else:
                    answers = runner.run(
                        spec.source.path
                        if checkpoint is not None
                        else opened.chunk_source()
                    )
                merged = processors
            routing = self._static_routing(merged)
        elapsed = time.perf_counter() - start

        report = RunReport(
            n_updates=len(opened),
            elapsed_s=elapsed,
            backend=execution.backend,
            workers=execution.workers,
            chunk_size=chunk_size,
            source=opened.describe(),
            effective_cores=engine_effective_cores(),
            routing=routing,
            window=spec.window.to_dict() if spec.window is not None else None,
            resumed=bool(resume),
            shard_retries=shard_retries,
            checkpoint=checkpoint.to_dict() if checkpoint is not None else None,
        )
        return PipelineResult(
            answers=answers,
            processors=merged,
            report=report,
            probes=probes,
            stream=opened.stream,
        )

    @staticmethod
    def _run_with_probes(
        runner: FanoutRunner,
        opened: OpenSource,
        processors: Dict[str, Any],
        chunk_size: int,
        probe_every: int,
        probes: List[ProbeRecord],
    ) -> None:
        position = 0
        next_probe = probe_every
        for a, b, sign in as_chunks(opened.chunk_source(), chunk_size):
            runner.process_chunk(a, b, sign)
            position += len(a)
            if position >= next_probe:
                probes.append(
                    ProbeRecord(
                        position,
                        {
                            label: processor.query()
                            for label, processor in processors.items()
                        },
                    )
                )
                while next_probe <= position:
                    next_probe += probe_every

    @staticmethod
    def _static_routing(processors: Dict[str, Any]) -> Optional[Any]:
        """Best-effort combined routing for the report (non-sharded
        backends never partition, so this is informational only)."""
        routings = []
        for name, processor in processors.items():
            if getattr(processor, "shard_routing", None) is None:
                return None
            try:
                routings.append(shard_routing_of(processor, name))
            except TypeError:
                return None
        try:
            return combined_routing(routings) if routings else None
        except ValueError:
            return None


class PipelineBuilder:
    """Fluent construction of a :class:`Pipeline`.

    Every method returns the builder; :meth:`build` assembles and
    validates.  Source methods (``memory`` / ``generator`` / ``file``)
    replace any previously set source; ``processor`` appends.
    """

    def __init__(self) -> None:
        self._source: Optional[SourceSpec] = None
        self._processors: List[ProcessorSpec] = []
        self._window: Optional[WindowSpec] = None
        self._execution = ExecSpec()
        self._checkpoint: Optional[CheckpointSpec] = None
        self._chunk_size: Optional[int] = None

    # -- source --------------------------------------------------------

    def source(self, spec: SourceSpec) -> "PipelineBuilder":
        self._source = spec
        return self

    def memory(self, stream: Any) -> "PipelineBuilder":
        return self.source(SourceSpec.memory(stream))

    def generator(self, name: str, **params: Any) -> "PipelineBuilder":
        return self.source(SourceSpec.from_generator(name, params))

    def file(
        self,
        path: Union[str, Path],
        *,
        mmap: bool = False,
        readahead: Optional[bool] = None,
        readahead_depth: int = 1,
    ) -> "PipelineBuilder":
        return self.source(
            SourceSpec.from_file(
                path,
                mmap=mmap,
                readahead=readahead,
                readahead_depth=readahead_depth,
            )
        )

    def chunk_size(self, chunk_size: int) -> "PipelineBuilder":
        self._chunk_size = chunk_size
        return self

    # -- processors ----------------------------------------------------

    def processor(
        self, name: str, *, label: Optional[str] = None, **params: Any
    ) -> "PipelineBuilder":
        self._processors.append(ProcessorSpec(name, params, label=label))
        return self

    # -- window --------------------------------------------------------

    def window(
        self,
        policy: str,
        window: int,
        *,
        bucket_ratio: float = 0.25,
        keep: int = 4,
        seed: int = 0,
    ) -> "PipelineBuilder":
        self._window = WindowSpec(
            policy=policy,
            window=window,
            bucket_ratio=bucket_ratio,
            keep=keep,
            seed=seed,
        )
        return self

    # -- execution -----------------------------------------------------

    def execution(
        self,
        backend: str,
        workers: int = 1,
        *,
        retries: int = 2,
        timeout_s: Optional[float] = None,
        on_failure: str = "raise",
    ) -> "PipelineBuilder":
        self._execution = ExecSpec(
            backend=backend,
            workers=workers,
            retries=retries,
            timeout_s=timeout_s,
            on_failure=on_failure,
        )
        return self

    def serial(self) -> "PipelineBuilder":
        return self.execution("serial")

    def sharded(self, workers: int, **kwargs: Any) -> "PipelineBuilder":
        return self.execution("sharded", workers, **kwargs)

    # -- checkpointing -------------------------------------------------

    def checkpoint(
        self, directory: Union[str, Path], *, every: Optional[int] = None
    ) -> "PipelineBuilder":
        if every is None:
            self._checkpoint = CheckpointSpec(dir=str(directory))
        else:
            self._checkpoint = CheckpointSpec(dir=str(directory), every=every)
        return self

    # -- assembly ------------------------------------------------------

    def build(self) -> Pipeline:
        if self._source is None:
            raise SpecError(
                "the builder needs a source; call .memory(), "
                ".generator() or .file() first"
            )
        source = self._source
        if self._chunk_size is not None:
            source = dataclasses.replace(source, chunk_size=self._chunk_size)
        return Pipeline(
            PipelineSpec(
                source=source,
                processors=tuple(self._processors),
                window=self._window,
                execution=self._execution,
                checkpoint=self._checkpoint,
            )
        )

    def run(self, **kwargs: Any) -> PipelineResult:
        """Build and immediately execute."""
        return self.build().run(**kwargs)


def run_spec(
    data: Mapping[str, Any], **kwargs: Any
) -> PipelineResult:
    """One-shot convenience: ``Pipeline.from_dict(data).run(**kwargs)``."""
    return Pipeline.from_dict(data).run(**kwargs)
