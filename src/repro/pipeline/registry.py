"""Named registries with typed parameter schemas.

The declarative pipeline resolves *names* ("insertion-only", "zipf")
into live objects through two registries:

* :data:`PROCESSORS` — every streaming structure a
  :class:`~repro.pipeline.spec.ProcessorSpec` may name: the paper's
  algorithms, the extension wrappers, the classical baselines and the
  sketch summaries.  Entries carry build-time metadata (shard routing,
  mergeability, which parameter is the seed) so specs validate without
  instantiating anything.
* :data:`GENERATORS` — every workload a ``generator`` source may name.
  The five CLI workloads (star / cascade / adversarial / zipf / churn)
  are registered with exactly the parameter derivations the CLI's
  ``--workload`` path has always used, so a spec-driven run reproduces
  a flag-driven run bit for bit.

Each entry declares its parameters as :class:`Param` rows (name, type,
default, doc).  Binding a params mapping against the schema catches
unknown names, missing required values, and type mismatches *eagerly*,
with close-match suggestions for misspelled entry names — the CoreDiag
posture: diagnose the configuration, don't crash the run.

Registration is open: library users add their own structures with
:func:`register_processor` / :func:`register_generator` and they become
spec-addressable exactly like the built-ins.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.pipeline.errors import ParamError, UnknownNameError

#: Sentinel: a parameter with this default is required.
_REQUIRED = object()


@dataclass(frozen=True)
class Param:
    """One typed parameter of a registry entry."""

    name: str
    type: type
    default: Any = _REQUIRED
    doc: str = ""

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED

    def check(self, value: Any, context: str) -> Any:
        """Validate (and mildly coerce) one supplied value."""
        expected = self.type
        if expected is bool:
            if not isinstance(value, bool):
                raise ParamError(
                    f"{context}: parameter {self.name!r} must be a bool, "
                    f"got {type(value).__name__} {value!r}"
                )
            return value
        if isinstance(value, bool):
            # bool is an int subclass; reject it for numeric params so a
            # JSON "true" never silently becomes 1.
            raise ParamError(
                f"{context}: parameter {self.name!r} must be "
                f"{expected.__name__}, got bool {value!r}"
            )
        if expected is float and isinstance(value, int):
            return float(value)
        if not isinstance(value, expected):
            raise ParamError(
                f"{context}: parameter {self.name!r} must be "
                f"{expected.__name__}, got {type(value).__name__} {value!r}"
            )
        return value


@dataclass(frozen=True)
class Entry:
    """One registered name: factory, parameter schema, metadata.

    Attributes:
        name: registry key.
        factory: called with the bound parameters as keyword arguments.
        params: the typed parameter schema.
        kind: coarse classification ("algorithm", "baseline", "sketch",
            "wrapper", "workload", ...), informational.
        routing: build-time shard-routing metadata (``"vertex"`` /
            ``"any"``), or ``None`` when it depends on the parameters —
            processor entries only.
        mergeable: whether instances implement ``split``/``merge``
            (required for sharded backends and sliding/decay windows) —
            processor entries only.
        seed_param: name of the factory parameter that receives derived
            per-bucket seeds under a window spec; ``None`` for
            deterministic structures.
        doc: one-line description shown by :func:`describe`.
    """

    name: str
    factory: Callable[..., Any]
    params: Tuple[Param, ...] = ()
    kind: str = "other"
    routing: Optional[str] = None
    mergeable: bool = True
    seed_param: Optional[str] = None
    doc: str = ""

    def bind(self, supplied: Mapping[str, Any]) -> Dict[str, Any]:
        """Defaults plus validated supplied values, ready for the factory."""
        context = f"{self.kind} {self.name!r}"
        known = {param.name: param for param in self.params}
        unknown = sorted(set(supplied) - set(known))
        if unknown:
            raise ParamError(
                f"{context}: unknown parameter(s) {unknown}; "
                f"accepted: {sorted(known)}"
            )
        bound: Dict[str, Any] = {}
        missing = []
        for param in self.params:
            if param.name in supplied:
                bound[param.name] = param.check(supplied[param.name], context)
            elif param.required:
                missing.append(param.name)
            else:
                bound[param.name] = param.default
        if missing:
            raise ParamError(
                f"{context}: missing required parameter(s) {missing}"
            )
        return bound

    def build(self, supplied: Mapping[str, Any]) -> Any:
        return self.factory(**self.bind(supplied))

    @property
    def resolved_class(self) -> Optional[type]:
        """The class behind :attr:`factory` when it *is* a class.

        ``None`` for function factories — structural tools (the
        ``repro analyze`` protocol lints) can only reason about class
        entries; the runtime contract auditor covers the rest.
        """
        return self.factory if isinstance(self.factory, type) else None


class Registry:
    """A name -> :class:`Entry` mapping with helpful failure modes."""

    def __init__(self, label: str) -> None:
        self.label = label
        self._entries: Dict[str, Entry] = {}

    def register(self, entry: Entry) -> Entry:
        if entry.name in self._entries:
            raise ValueError(
                f"{self.label} {entry.name!r} is already registered; "
                f"unregister it first to replace it"
            )
        self._entries[entry.name] = entry
        return entry

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entries(self) -> Tuple[Entry, ...]:
        """Every registered :class:`Entry`, in name order — the metadata
        accessor ``repro analyze``'s protocol lints and contract auditor
        iterate."""
        return tuple(self._entries[name] for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> Entry:
        try:
            return self._entries[name]
        except KeyError:
            suggestions = difflib.get_close_matches(
                name, self._entries, n=3, cutoff=0.5
            )
            hint = (
                f"; did you mean {' / '.join(map(repr, suggestions))}?"
                if suggestions
                else f"; registered: {list(self.names())}"
            )
            raise UnknownNameError(
                f"unknown {self.label} {name!r}{hint}", name, suggestions
            ) from None

    def build(self, name: str, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Resolve ``name`` and build an instance from ``params``."""
        return self.get(name).build(params or {})

    def describe(self) -> str:
        """Human-readable inventory (one line per entry)."""
        lines = []
        for name in self.names():
            entry = self._entries[name]
            signature = ", ".join(
                param.name if param.required
                else f"{param.name}={param.default!r}"
                for param in entry.params
            )
            lines.append(f"{name}({signature}) — {entry.doc}")
        return "\n".join(lines)


#: The two pipeline registries.
PROCESSORS = Registry("processor")
GENERATORS = Registry("generator")


def register_processor(
    name: str,
    factory: Callable[..., Any],
    params: Tuple[Param, ...] = (),
    *,
    kind: str = "other",
    routing: Optional[str] = None,
    mergeable: bool = True,
    seed_param: Optional[str] = None,
    doc: str = "",
) -> Entry:
    """Register a streaming structure under ``name`` (see :class:`Entry`)."""
    return PROCESSORS.register(
        Entry(name, factory, params, kind, routing, mergeable, seed_param, doc)
    )


def register_generator(
    name: str,
    factory: Callable[..., Any],
    params: Tuple[Param, ...] = (),
    *,
    doc: str = "",
) -> Entry:
    """Register a workload generator under ``name``."""
    return GENERATORS.register(
        Entry(name, factory, params, kind="workload", doc=doc)
    )


@dataclass(frozen=True)
class RegistryWindowFactory:
    """Picklable per-bucket factory for windowed registry processors.

    :class:`~repro.engine.windows.WindowedProcessor` calls its factory
    with each bucket's derived seed; this adapter injects that seed into
    the entry's declared ``seed_param`` (or ignores it for deterministic
    structures) and builds through the registry.  Parameters are stored
    as a sorted item tuple so the dataclass stays frozen, hashable and
    picklable — sharded worker processes re-resolve the entry by name
    after import, exactly like the built-in window factories.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @staticmethod
    def of(name: str, params: Mapping[str, Any]) -> "RegistryWindowFactory":
        return RegistryWindowFactory(name, tuple(sorted(params.items())))

    def __call__(self, seed: int) -> Any:
        entry = PROCESSORS.get(self.name)
        params = dict(self.params)
        if entry.seed_param is not None:
            params[entry.seed_param] = seed
        return entry.build(params)


# ----------------------------------------------------------------------
# Built-in processors.
# ----------------------------------------------------------------------


def _builtin_processors() -> None:
    from repro.baselines.count_min import CountMinSketch
    from repro.baselines.count_sketch import CountSketch
    from repro.baselines.misra_gries import MisraGries
    from repro.baselines.naive import FullStorage
    from repro.baselines.space_saving import SpaceSaving
    from repro.core.insertion_deletion import InsertionDeletionFEwW
    from repro.core.insertion_only import InsertionOnlyFEwW
    from repro.core.star_detection import StarDetection
    from repro.core.topk import TopKFEwW

    register_processor(
        "insertion-only",
        InsertionOnlyFEwW,
        (
            Param("n", int, doc="number of A-vertices"),
            Param("d", int, doc="degree threshold"),
            Param("alpha", int, 2, "approximation factor"),
            Param("seed", int, 0),
        ),
        kind="algorithm",
        routing="vertex",
        seed_param="seed",
        doc="the paper's Algorithm 2 (insertion-only FEwW)",
    )
    register_processor(
        "insertion-deletion",
        InsertionDeletionFEwW,
        (
            Param("n", int, doc="number of A-vertices"),
            Param("m", int, doc="number of B-vertices"),
            Param("d", int, doc="degree threshold"),
            Param("alpha", int, 2, "approximation factor"),
            Param("seed", int, 0),
            Param("scale", float, 1.0, "sampler-count scale"),
        ),
        kind="algorithm",
        routing="any",
        seed_param="seed",
        doc="the paper's Algorithm 3 (turnstile FEwW)",
    )
    register_processor(
        "star-detection",
        StarDetection,
        (
            Param("n_vertices", int, doc="vertices of the undirected graph"),
            Param("alpha", int, 2, "approximation factor"),
            Param("eps", float, 0.5, "guess-ladder ratio"),
            Param("model", str, "insertion-only"),
            Param("seed", int, 0),
            Param("scale", float, 1.0),
        ),
        kind="wrapper",
        routing=None,  # vertex for insertion-only, any for turnstile
        seed_param="seed",
        doc="Lemma 3.3 star detection (degree-guess ladder)",
    )
    register_processor(
        "topk",
        TopKFEwW,
        (
            Param("n", int, doc="number of A-vertices"),
            Param("d", int, doc="degree threshold"),
            Param("alpha", int, 2),
            Param("k", int, doc="answers to return"),
            Param("seed", int, 0),
        ),
        kind="wrapper",
        routing="vertex",
        seed_param="seed",
        doc="top-k heavy vertices with witnesses",
    )
    register_processor(
        "misra-gries",
        MisraGries,
        (Param("k", int, doc="counter budget"),),
        kind="baseline",
        routing="any",
        doc="Misra-Gries heavy hitters (no witnesses)",
    )
    register_processor(
        "space-saving",
        SpaceSaving,
        (Param("k", int, doc="counter budget"),),
        kind="baseline",
        routing="any",
        doc="SpaceSaving heavy hitters (no witnesses)",
    )
    register_processor(
        "count-min",
        CountMinSketch,
        (
            Param("epsilon", float, doc="additive error fraction"),
            Param("delta", float, doc="failure probability"),
            Param("seed", int, 0),
        ),
        kind="sketch",
        routing="any",
        seed_param="seed",
        doc="Count-Min frequency sketch",
    )
    register_processor(
        "count-sketch",
        CountSketch,
        (
            Param("width", int, doc="buckets per row"),
            Param("rows", int, 5),
            Param("seed", int, 0),
        ),
        kind="sketch",
        routing="any",
        seed_param="seed",
        doc="CountSketch frequency sketch",
    )
    from repro.sketch.bloom import BloomDedup
    from repro.sketch.l0 import L0EdgeBank

    register_processor(
        "l0-bank",
        L0EdgeBank,
        (
            Param("n", int, doc="number of A-vertices"),
            Param("m", int, doc="number of B-vertices"),
            Param("count", int, doc="number of independent samplers"),
            Param("delta", float, 0.05, "per-sampler failure probability"),
            Param("seed", int, 0),
            Param("mode", str, "fast", "'exact' sketches or 'fast' simulation"),
        ),
        kind="sketch",
        routing="any",
        seed_param="seed",
        doc="bank of l0-samplers over the edge-incidence vector",
    )
    register_processor(
        "bloom-dedup",
        BloomDedup,
        (
            Param("n", int, doc="number of A-vertices"),
            Param("m", int, doc="number of B-vertices"),
            Param("capacity", int, doc="expected distinct pairs"),
            Param("fp_rate", float, 0.01, "false-positive target"),
            Param("seed", int, 0),
        ),
        kind="sketch",
        routing="vertex",
        seed_param="seed",
        doc="Bloom-filter pair dedup (admitted/suppressed counting)",
    )
    register_processor(
        "full-storage",
        FullStorage,
        (
            Param("n", int, doc="number of A-vertices"),
            Param("m", int, doc="number of B-vertices"),
        ),
        kind="baseline",
        routing="vertex",
        doc="exact adjacency storage (the space upper baseline)",
    )


# ----------------------------------------------------------------------
# Built-in generators: the CLI workloads, bit-for-bit.
# ----------------------------------------------------------------------

#: Shared schema of the CLI workload generators (defaults match the
#: CLI's ``run`` flags, so an all-defaults spec equals a bare
#: ``repro run``).
_WORKLOAD_PARAMS = (
    Param("n", int, 512, "number of items (A-vertices)"),
    Param("m", int, 4096, "number of witnesses (B-vertices)"),
    Param("d", int, 128, "degree threshold the workload is sized for"),
    Param("alpha", int, 2, "approximation factor"),
    Param("seed", int, 0),
)


def _workload_star(n: int, m: int, d: int, alpha: int, seed: int) -> Any:
    from repro.streams.generators import GeneratorConfig, planted_star_graph

    return planted_star_graph(
        GeneratorConfig(n=n, m=m, seed=seed),
        star_degree=d,
        background_degree=min(5, d - 1),
    )


def _workload_cascade(n: int, m: int, d: int, alpha: int, seed: int) -> Any:
    from repro.streams.generators import GeneratorConfig, degree_cascade_graph

    return degree_cascade_graph(
        GeneratorConfig(n=n, m=m, seed=seed), d=d, alpha=max(2, alpha)
    )


def _workload_adversarial(n: int, m: int, d: int, alpha: int, seed: int) -> Any:
    from repro.streams.generators import (
        GeneratorConfig,
        adversarial_interleaved_stream,
    )

    return adversarial_interleaved_stream(
        GeneratorConfig(n=n, m=m, seed=seed),
        star_degree=d,
        n_decoys=min(n - 1, 30),
        decoy_degree=max(1, d // 2),
    )


def _workload_zipf(n: int, m: int, d: int, alpha: int, seed: int) -> Any:
    from repro.streams.generators import GeneratorConfig, zipf_frequency_stream

    return zipf_frequency_stream(
        GeneratorConfig(n=n, m=m, seed=seed), n_records=min(m, 8 * d)
    )


def _workload_churn(n: int, m: int, d: int, alpha: int, seed: int) -> Any:
    from repro.streams.generators import GeneratorConfig, deletion_churn_stream

    return deletion_churn_stream(
        GeneratorConfig(n=n, m=m, seed=seed),
        star_degree=d,
        churn_edges=4 * d,
    )


def _workload_random(n: int, m: int, edges: int, seed: int) -> Any:
    from repro.streams.generators import GeneratorConfig, random_bipartite_graph

    return random_bipartite_graph(GeneratorConfig(n=n, m=m, seed=seed), edges)


def _builtin_generators() -> None:
    for name, factory, doc in (
        ("star", _workload_star, "one planted heavy vertex over noise"),
        ("cascade", _workload_cascade, "geometric degree cascade"),
        ("adversarial", _workload_adversarial,
         "heavy vertex interleaved with near-threshold decoys"),
        ("zipf", _workload_zipf, "Zipf-distributed item frequencies"),
        ("churn", _workload_churn,
         "insert/delete churn around a persistent star"),
    ):
        register_generator(name, factory, _WORKLOAD_PARAMS, doc=doc)
    register_generator(
        "random-bipartite",
        _workload_random,
        (
            Param("n", int, 512),
            Param("m", int, 4096),
            Param("edges", int, doc="number of distinct edges"),
            Param("seed", int, 0),
        ),
        doc="uniform random bipartite graph",
    )


_builtin_processors()
_builtin_generators()
