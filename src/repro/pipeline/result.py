"""Typed pipeline results: answers + run metadata, JSON-serializable.

A :meth:`~repro.pipeline.Pipeline.run` returns a
:class:`PipelineResult` instead of printing: per-processor answers (the
raw objects, for callers that keep computing) plus a :class:`RunReport`
of timing, backend, shard and window metadata, and any mid-stream
:class:`ProbeRecord` rows the run collected.  ``to_dict()`` renders the
whole thing JSON-compatible — answers are summarized by
:func:`describe_answer` (a ``Neighbourhood`` becomes its vertex and
witness count, window records become index/range/value rows,
query-style summaries become their type and space) so a result can be
logged, archived next to ``BENCH_throughput.json``, or diffed across
runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.windows import (
    DecayAnswer,
    SlidingWindowAnswer,
)


def describe_answer(value: Any) -> Any:
    """A JSON-compatible summary of one processor's answer.

    Handles the library's answer shapes — ``None`` (failure),
    neighbourhoods, lists of window records or neighbourhoods, sliding
    and decay answers, and query-style summaries that return themselves
    from ``finalize`` — and falls back to ``repr`` for anything else.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "vertex") and hasattr(value, "witnesses"):
        return {
            "type": "neighbourhood",
            "vertex": int(value.vertex),
            "size": int(value.size),
            "witnesses": sorted(int(w) for w in value.witnesses),
        }
    if isinstance(value, SlidingWindowAnswer):
        return {
            "type": "sliding",
            "window": value.window,
            "bucket": value.bucket,
            "start_update": value.start_update,
            "end_update": value.end_update,
            "span": value.span,
            "n_buckets": value.n_buckets,
            "value": describe_answer(value.value),
        }
    if isinstance(value, DecayAnswer):
        return {
            "type": "decay",
            "recent": [describe_answer(record) for record in value.recent],
            "has_tail": value.has_tail,
            "tail_start_update": value.tail_start_update,
            "tail_end_update": value.tail_end_update,
            "tail_value": describe_answer(value.tail_value),
        }
    if hasattr(value, "window_index") and hasattr(value, "start_update"):
        # WindowRecord and subclasses (e.g. core.windowed.WindowResult).
        inner = getattr(value, "value", None)
        if inner is None:
            inner = getattr(value, "neighbourhood", None)
        return {
            "type": "window",
            "index": value.window_index,
            "start_update": value.start_update,
            "end_update": value.end_update,
            "value": describe_answer(inner),
        }
    if isinstance(value, (list, tuple)):
        return [describe_answer(item) for item in value]
    summary: Dict[str, Any] = {"type": type(value).__name__}
    space = getattr(value, "space_words", None)
    if callable(space):
        summary["space_words"] = int(space())
    return summary


@dataclass
class ProbeRecord:
    """One mid-stream probe: windowed answers at a stream position.

    ``answers`` maps processor labels to whatever
    :meth:`~repro.engine.windows.WindowedProcessor.query` returned at
    ``position`` updates into the stream.
    """

    position: int
    answers: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "position": self.position,
            "answers": {
                label: describe_answer(answer)
                for label, answer in self.answers.items()
            },
        }


@dataclass
class RunReport:
    """Execution metadata for one pipeline pass.

    The fault-tolerance fields default to their "nothing happened"
    values: ``resumed`` is True when the pass continued from a
    checkpoint, ``shard_retries`` counts shard-worker re-runs, and
    ``checkpoint`` echoes the checkpoint spec when one was active.
    """

    n_updates: int
    elapsed_s: float
    backend: str
    workers: int
    chunk_size: int
    source: Dict[str, Any]
    #: CPUs the run could actually use (affinity-aware, see
    #: :func:`repro.engine.effective_cores`) — recorded so rates and
    #: worker counts are always read against the real parallelism.
    effective_cores: Optional[int] = None
    routing: Optional[Any] = None
    window: Optional[Dict[str, Any]] = None
    resumed: bool = False
    shard_retries: int = 0
    checkpoint: Optional[Dict[str, Any]] = None

    @property
    def updates_per_s(self) -> float:
        return self.n_updates / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["updates_per_s"] = self.updates_per_s
        if isinstance(self.routing, tuple):
            out["routing"] = list(self.routing)
        return out


@dataclass
class PipelineResult:
    """What a pipeline run produced.

    Attributes:
        answers: label -> the processor's finalized answer (raw
            objects; ``result[label]`` is shorthand).
        processors: label -> the (merged, for sharded runs) processor,
            for callers that keep querying or need space accounting.
        report: the :class:`RunReport` metadata.
        probes: mid-stream :class:`ProbeRecord` rows (empty unless the
            run was launched with ``probe_every``).
        stream: the materialized in-memory source, when one exists
            (``None`` for mmap file runs) — callers use it for
            ground-truth verification.
    """

    answers: Dict[str, Any]
    processors: Dict[str, Any]
    report: RunReport
    probes: List[ProbeRecord] = field(default_factory=list)
    stream: Any = None

    def __getitem__(self, label: str) -> Any:
        return self.answers[label]

    def __contains__(self, label: str) -> bool:
        return label in self.answers

    def labels(self) -> List[str]:
        return list(self.answers)

    def space_words(self) -> Dict[str, int]:
        """Per-processor space accounting (labels without a
        ``space_words`` method are omitted)."""
        out = {}
        for label, processor in self.processors.items():
            space = getattr(processor, "space_words", None)
            if callable(space):
                out[label] = int(space())
        return out

    def to_dict(self) -> Dict[str, Any]:
        """The whole result as a JSON-compatible dict."""
        return {
            "answers": {
                label: describe_answer(answer)
                for label, answer in self.answers.items()
            },
            "space_words": self.space_words(),
            "report": self.report.to_dict(),
            "probes": [probe.to_dict() for probe in self.probes],
        }
