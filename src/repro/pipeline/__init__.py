"""Declarative pipeline API: one spec-driven entry point for every run.

A pipeline is described by a validated, JSON-serializable
:class:`~repro.pipeline.spec.PipelineSpec` — *source* (in-memory /
generator-by-name / stream file) × *window* (tumbling / sliding /
decay, optional) × *execution backend* (fanout / serial / sharded) ×
*processors* (resolved by name through the typed
:mod:`~repro.pipeline.registry`) — and executed by
:class:`~repro.pipeline.pipeline.Pipeline`, which returns a typed
:class:`~repro.pipeline.result.PipelineResult`.  The CLI's ``run``
command, the benchmarks and the examples are all thin clients of this
module; see the README's "Pipeline API" section for a JSON quickstart.
"""

from repro.pipeline.errors import (
    Diagnostic,
    ParamError,
    PipelineError,
    PipelineValidationError,
    RegistryError,
    SpecError,
    UnknownNameError,
)
from repro.pipeline.pipeline import (
    OpenSource,
    Pipeline,
    PipelineBuilder,
    make_window_policy,
    open_source,
    run_spec,
)
from repro.pipeline.registry import (
    GENERATORS,
    PROCESSORS,
    Entry,
    Param,
    Registry,
    RegistryWindowFactory,
    register_generator,
    register_processor,
)
from repro.pipeline.result import (
    PipelineResult,
    ProbeRecord,
    RunReport,
    describe_answer,
)
from repro.pipeline.spec import (
    BACKENDS,
    CheckpointSpec,
    ExecSpec,
    PipelineSpec,
    ProcessorSpec,
    SOURCE_KINDS,
    SourceSpec,
    WINDOW_POLICIES,
    WindowSpec,
    validate_spec,
)

__all__ = [
    "BACKENDS",
    "CheckpointSpec",
    "Diagnostic",
    "Entry",
    "ExecSpec",
    "GENERATORS",
    "OpenSource",
    "PROCESSORS",
    "Param",
    "ParamError",
    "Pipeline",
    "PipelineBuilder",
    "PipelineError",
    "PipelineResult",
    "PipelineSpec",
    "PipelineValidationError",
    "ProbeRecord",
    "ProcessorSpec",
    "Registry",
    "RegistryError",
    "RegistryWindowFactory",
    "RunReport",
    "SOURCE_KINDS",
    "SourceSpec",
    "SpecError",
    "UnknownNameError",
    "WINDOW_POLICIES",
    "WindowSpec",
    "describe_answer",
    "make_window_policy",
    "open_source",
    "register_generator",
    "register_processor",
    "run_spec",
    "validate_spec",
]
