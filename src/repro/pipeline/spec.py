"""Declarative, serializable pipeline specs.

A pipeline run is described by four small frozen dataclasses —
*what streams* (:class:`SourceSpec`), *how it is windowed*
(:class:`WindowSpec`, optional), *what consumes it*
(:class:`ProcessorSpec`, resolved through the
:mod:`~repro.pipeline.registry`), and *how it executes*
(:class:`ExecSpec`) — combined into one :class:`PipelineSpec`.

Specs are plain data: they serialize to JSON-compatible dicts
(:meth:`PipelineSpec.to_dict`) and back
(:meth:`PipelineSpec.from_dict`) with exact round-tripping
(``from_dict(to_dict(s)) == s``), so a run is a reproducible artifact
the same way a persisted stream file is.  The one exception is an
in-memory source, which holds a live stream object and refuses to
serialize.

:func:`validate_spec` performs the eager cross-field validation:
every conflicting assignment in the spec is reported as a
:class:`~repro.pipeline.errors.Diagnostic` (mmap without a file
source, multi-worker serial backends, non-mergeable processors under
merging window policies, unknown registry names or mistyped
parameters, ...), and :class:`~repro.pipeline.Pipeline` raises them
all at construction time as one
:class:`~repro.pipeline.errors.PipelineValidationError` — a bad spec
never starts streaming.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.checkpoint import DEFAULT_CHECKPOINT_EVERY
from repro.engine.sharded import ON_FAILURE_POLICIES
from repro.pipeline.errors import (
    Diagnostic,
    RegistryError,
    SpecError,
)
from repro.streams.columnar import DEFAULT_CHUNK_SIZE

SOURCE_KINDS = ("memory", "generator", "file")
BACKENDS = ("fanout", "serial", "sharded")
WINDOW_POLICIES = ("tumbling", "sliding", "decay")

_MISSING = dataclasses.MISSING


def _field_default(spec_field: dataclasses.Field) -> Any:
    if spec_field.default is not _MISSING:
        return spec_field.default
    if spec_field.default_factory is not _MISSING:
        return spec_field.default_factory()
    return _MISSING


def _compact_dict(
    spec: Any,
    *,
    always: Sequence[str] = (),
    skip: Sequence[str] = (),
) -> Dict[str, Any]:
    """Dataclass -> dict, omitting fields that still hold their default
    (keeps JSON specs minimal while round-tripping exactly)."""
    out: Dict[str, Any] = {}
    for spec_field in dataclasses.fields(spec):
        if spec_field.name in skip:
            continue
        value = getattr(spec, spec_field.name)
        default = _field_default(spec_field)
        if spec_field.name in always or default is _MISSING or value != default:
            out[spec_field.name] = value
    return out


def _check_keys(
    data: Mapping[str, Any], cls: type, *, skip: Sequence[str] = ()
) -> None:
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{cls.__name__} spec must be a mapping, got "
            f"{type(data).__name__}"
        )
    accepted = {
        spec_field.name
        for spec_field in dataclasses.fields(cls)
        if spec_field.name not in skip
    }
    unknown = sorted(set(data) - accepted)
    if unknown:
        raise SpecError(
            f"{cls.__name__}: unknown field(s) {unknown}; "
            f"accepted: {sorted(accepted)}"
        )


def _build_spec(
    cls: type, data: Mapping[str, Any], *, skip: Sequence[str] = ()
) -> Any:
    """Construct a spec dataclass from untrusted dict data.

    Key and required-field problems surface as :class:`SpecError`
    (never a raw ``TypeError`` traceback — ``--spec`` feeds arbitrary
    JSON through here).
    """
    _check_keys(data, cls, skip=skip)
    missing = sorted(
        spec_field.name
        for spec_field in dataclasses.fields(cls)
        if spec_field.name not in skip
        and spec_field.name not in data
        and _field_default(spec_field) is _MISSING
    )
    if missing:
        raise SpecError(
            f"{cls.__name__}: missing required field(s) {missing}"
        )
    return cls(**data)


# ----------------------------------------------------------------------
# Source.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SourceSpec:
    """Where the update stream comes from.

    Attributes:
        kind: ``"memory"`` (a live stream object), ``"generator"`` (a
            registered workload built by name), or ``"file"`` (a
            persisted v1/v2 stream).
        stream: the live stream (memory sources only; not serializable).
        generator: registered generator name (generator sources only).
        params: generator parameters, validated against its schema.
        path: stream file path (file sources only).
        chunk_size: updates per engine chunk.
        mmap: memory-map the v2 file instead of loading it (file
            sources; the out-of-core path).
        readahead: prefetch upcoming chunks on a background thread.
            ``None`` (default) auto-enables readahead exactly where it
            pays: memory-mapped file passes, whose cold page-ins are
            the latency being hidden.
        readahead_depth: chunks kept in flight by the prefetcher.
    """

    kind: str
    stream: Any = None
    generator: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    path: Optional[str] = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    mmap: bool = False
    readahead: Optional[bool] = None
    readahead_depth: int = 1

    def __post_init__(self) -> None:
        if self.path is not None and not isinstance(self.path, str):
            object.__setattr__(self, "path", str(self.path))
        if not isinstance(self.params, dict):
            object.__setattr__(self, "params", dict(self.params))

    @staticmethod
    def memory(stream: Any, *, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "SourceSpec":
        return SourceSpec(kind="memory", stream=stream, chunk_size=chunk_size)

    @staticmethod
    def from_generator(
        generator: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "SourceSpec":
        return SourceSpec(
            kind="generator",
            generator=generator,
            params=dict(params or {}),
            chunk_size=chunk_size,
        )

    @staticmethod
    def from_file(
        path: Union[str, Path],
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        mmap: bool = False,
        readahead: Optional[bool] = None,
        readahead_depth: int = 1,
    ) -> "SourceSpec":
        return SourceSpec(
            kind="file",
            path=str(path),
            chunk_size=chunk_size,
            mmap=mmap,
            readahead=readahead,
            readahead_depth=readahead_depth,
        )

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "memory":
            raise SpecError(
                "an in-memory source holds a live stream object and "
                "cannot be serialized; persist the stream "
                "(repro.streams.persist.dump_stream) and use a file "
                "source, or a generator source"
            )
        out = _compact_dict(self, always=("kind",), skip=("stream",))
        if "params" in out:
            out["params"] = dict(out["params"])
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SourceSpec":
        return _build_spec(SourceSpec, data, skip=("stream",))


# ----------------------------------------------------------------------
# Window.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WindowSpec:
    """Window policy applied to every processor in the pipeline.

    Attributes:
        policy: ``"tumbling"``, ``"sliding"`` or ``"decay"``.
        window: window span in updates (tumbling/sliding) or bucket
            size (decay) — the CLI's ``--window``.
        bucket_ratio: sliding only — smooth-histogram bucket ratio.
        keep: decay only — recent buckets kept at full resolution.
        seed: master seed for per-bucket seed derivation.  Under a
            window spec this is the *only* seed in play — a
            processor-level seed parameter is rejected by validation,
            since per-bucket instances would overwrite it anyway.
    """

    policy: str
    window: int
    bucket_ratio: float = 0.25
    keep: int = 4
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return _compact_dict(self, always=("policy", "window"))

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "WindowSpec":
        return _build_spec(WindowSpec, data)


# ----------------------------------------------------------------------
# Processors.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessorSpec:
    """One registered structure to feed, with its parameters.

    ``label`` names the processor in results (defaults to ``name``;
    labels must be unique within a pipeline, so one structure can run
    twice with different parameters).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.params, dict):
            object.__setattr__(self, "params", dict(self.params))

    @property
    def effective_label(self) -> str:
        return self.label if self.label is not None else self.name

    def to_dict(self) -> Dict[str, Any]:
        out = _compact_dict(self, always=("name",))
        if "params" in out:
            out["params"] = dict(out["params"])
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ProcessorSpec":
        return _build_spec(ProcessorSpec, data)


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExecSpec:
    """How the pass executes.

    * ``"fanout"`` (default) — one single-pass
      :class:`~repro.engine.runner.FanoutRunner` over all processors.
    * ``"serial"`` — one independent pass per processor (the
      pre-engine style; useful for isolating a structure's behaviour
      or timing).  Requires a re-iterable source.
    * ``"sharded"`` — a :class:`~repro.engine.sharded.ShardedRunner`
      over ``workers`` processes, merging shard summaries.

    The fault-tolerance knobs apply to the sharded backend's
    file-source workers (see :mod:`repro.engine.sharded`):

    * ``retries`` — respawns of a dead/timed-out shard worker;
    * ``timeout_s`` — per-shard wall-clock budget (``None`` = none);
    * ``on_failure`` — ``"raise"`` (default), ``"retry"``, or
      ``"serial_fallback"``.
    """

    backend: str = "fanout"
    workers: int = 1
    retries: int = 2
    timeout_s: Optional[float] = None
    on_failure: str = "raise"

    def to_dict(self) -> Dict[str, Any]:
        return _compact_dict(self, always=("backend",))

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ExecSpec":
        return _build_spec(ExecSpec, data)


# ----------------------------------------------------------------------
# Checkpointing.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointSpec:
    """Durable-progress configuration for a run.

    Attributes:
        dir: directory the
            :class:`~repro.engine.checkpoint.CheckpointStore` writes
            snapshots into.
        every: source chunks between snapshots.
    """

    dir: str
    every: int = DEFAULT_CHECKPOINT_EVERY

    def __post_init__(self) -> None:
        if not isinstance(self.dir, (str, Path)):
            return  # left for validate_spec to diagnose
        object.__setattr__(self, "dir", str(self.dir))

    def to_dict(self) -> Dict[str, Any]:
        return _compact_dict(self, always=("dir",))

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CheckpointSpec":
        return _build_spec(CheckpointSpec, data)


# ----------------------------------------------------------------------
# The combined spec.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineSpec:
    """The full declarative description of one pipeline run."""

    source: SourceSpec
    processors: Tuple[ProcessorSpec, ...]
    window: Optional[WindowSpec] = None
    execution: ExecSpec = field(default_factory=ExecSpec)
    checkpoint: Optional[CheckpointSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.processors, tuple):
            object.__setattr__(self, "processors", tuple(self.processors))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "source": self.source.to_dict(),
            "processors": [
                processor.to_dict() for processor in self.processors
            ],
        }
        if self.window is not None:
            out["window"] = self.window.to_dict()
        if self.execution != ExecSpec():
            out["execution"] = self.execution.to_dict()
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint.to_dict()
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PipelineSpec":
        _check_keys(data, PipelineSpec)
        if "source" not in data or "processors" not in data:
            missing = sorted({"source", "processors"} - set(data))
            raise SpecError(
                f"PipelineSpec: missing required field(s) {missing}"
            )
        processors = data["processors"]
        if isinstance(processors, (str, Mapping)) or not isinstance(
            processors, (list, tuple)
        ):
            raise SpecError(
                "PipelineSpec: 'processors' must be a list of processor "
                "specs"
            )
        return PipelineSpec(
            source=SourceSpec.from_dict(data["source"]),
            processors=tuple(
                ProcessorSpec.from_dict(processor) for processor in processors
            ),
            window=(
                WindowSpec.from_dict(data["window"])
                if data.get("window") is not None
                else None
            ),
            execution=(
                ExecSpec.from_dict(data["execution"])
                if "execution" in data
                else ExecSpec()
            ),
            checkpoint=(
                CheckpointSpec.from_dict(data["checkpoint"])
                if data.get("checkpoint") is not None
                else None
            ),
        )


# ----------------------------------------------------------------------
# Eager cross-field validation.
# ----------------------------------------------------------------------

#: Scalar spec fields and their expected types (bool checked before int
#: so JSON true/false never passes as a number).
_SCALAR_FIELDS = {
    "source": (
        ("kind", str), ("generator", (str, type(None))),
        ("path", (str, type(None))), ("chunk_size", int), ("mmap", bool),
        ("readahead", (bool, type(None))), ("readahead_depth", int),
    ),
    "window": (
        ("policy", str), ("window", int), ("bucket_ratio", (int, float)),
        ("keep", int), ("seed", int),
    ),
    "execution": (
        ("backend", str), ("workers", int), ("retries", int),
        ("timeout_s", (int, float, type(None))), ("on_failure", str),
    ),
    "checkpoint": (("dir", str), ("every", int)),
}


def _scalar_type_diagnostics(spec: PipelineSpec) -> List[Diagnostic]:
    out: List[Diagnostic] = []

    def check(
        prefix: str,
        obj: Any,
        rules: Sequence[Tuple[str, Any]],
    ) -> None:
        for name, expected in rules:
            value = getattr(obj, name)
            ok = isinstance(value, expected)
            if ok and not (
                expected is bool
                or (isinstance(expected, tuple) and bool in expected)
            ) and isinstance(value, bool):
                ok = False
            if not ok:
                wanted = (
                    expected.__name__ if isinstance(expected, type)
                    else "/".join(t.__name__ for t in expected)
                )
                out.append(Diagnostic(
                    f"{prefix}.{name}",
                    f"must be {wanted}, got "
                    f"{type(value).__name__} {value!r}",
                ))

    check("source", spec.source, _SCALAR_FIELDS["source"])
    if spec.window is not None:
        check("window", spec.window, _SCALAR_FIELDS["window"])
    check("execution", spec.execution, _SCALAR_FIELDS["execution"])
    if spec.checkpoint is not None:
        check("checkpoint", spec.checkpoint, _SCALAR_FIELDS["checkpoint"])
    for index, processor in enumerate(spec.processors):
        prefix = f"processors[{index}]"
        if not isinstance(processor.name, str):
            out.append(Diagnostic(
                f"{prefix}.name",
                f"must be str, got {type(processor.name).__name__}",
            ))
        if not isinstance(processor.label, (str, type(None))):
            out.append(Diagnostic(
                f"{prefix}.label",
                f"must be str, got {type(processor.label).__name__}",
            ))
    return out


def validate_spec(spec: PipelineSpec) -> List[Diagnostic]:
    """Every conflict in ``spec``, as actionable diagnostics.

    Returns an empty list for a well-formed spec.  Checks are static —
    registry schemas and cross-field consistency — and never touch the
    filesystem or build a processor, so validation is safe to run on
    untrusted specs.
    """
    from repro.pipeline.registry import GENERATORS, PROCESSORS

    diagnostics: List[Diagnostic] = []

    def bad(field_name: str, problem: str, hint: str = "") -> None:
        diagnostics.append(Diagnostic(field_name, problem, hint))

    # Scalar field types first: a mistyped value (e.g. a JSON string
    # where an int belongs) must become a diagnostic, not a TypeError
    # from a numeric comparison below — validation runs on untrusted
    # specs.  Return early on type problems; the cross-field checks
    # assume well-typed values.
    type_errors = _scalar_type_diagnostics(spec)
    if type_errors:
        return type_errors

    source = spec.source
    if source.kind not in SOURCE_KINDS:
        bad("source.kind", f"unknown source kind {source.kind!r}",
            f"expected one of {SOURCE_KINDS}")
    elif source.kind == "memory":
        if source.stream is None:
            bad("source.stream", "a memory source needs a live stream object",
                "use SourceSpec.memory(stream)")
    elif source.kind == "generator":
        if source.generator is None:
            bad("source.generator", "a generator source needs a generator name",
                f"registered: {list(GENERATORS.names())}")
        else:
            try:
                GENERATORS.get(source.generator).bind(source.params)
            except RegistryError as error:
                bad("source.generator", str(error))
    elif source.path is None:
        bad("source.path", "a file source needs a stream file path")
    if source.chunk_size < 1:
        bad("source.chunk_size",
            f"chunk_size must be >= 1, got {source.chunk_size}")
    if source.mmap and source.kind != "file":
        bad("source.mmap",
            f"mmap requires a file source, got kind={source.kind!r}",
            "mmap memory-maps a persisted v2 stream")
    if source.readahead and not source.mmap:
        bad("source.readahead",
            "readahead requires mmap (it prefetches the memory-mapped "
            "reader's next chunks)",
            "set mmap=true, or leave readahead unset for auto")
    if source.readahead_depth < 1:
        bad("source.readahead_depth",
            f"readahead_depth must be >= 1, got {source.readahead_depth}")

    if not spec.processors:
        bad("processors", "a pipeline needs at least one processor",
            f"registered: {list(PROCESSORS.names())}")
    seen_labels = set()
    entries = {}
    for index, processor in enumerate(spec.processors):
        prefix = f"processors[{index}]"
        label = processor.effective_label
        if label in seen_labels:
            bad(f"{prefix}.label", f"duplicate processor label {label!r}",
                "give one of them an explicit unique label")
        seen_labels.add(label)
        try:
            entry = PROCESSORS.get(processor.name)
            entry.bind(processor.params)
            entries[index] = entry
        except RegistryError as error:
            bad(f"{prefix}.name", str(error))

    window = spec.window
    if window is not None:
        if window.policy not in WINDOW_POLICIES:
            bad("window.policy", f"unknown window policy {window.policy!r}",
                f"expected one of {WINDOW_POLICIES}")
        if window.window < 1:
            bad("window.window", f"window must be >= 1, got {window.window}")
        if not 0.0 < window.bucket_ratio <= 1.0:
            bad("window.bucket_ratio",
                f"bucket_ratio must be in (0, 1], got {window.bucket_ratio}")
        if window.keep < 1:
            bad("window.keep", f"keep must be >= 1, got {window.keep}")
        if window.policy in ("sliding", "decay"):
            for index, entry in entries.items():
                if not entry.mergeable:
                    bad(f"processors[{index}].name",
                        f"{entry.name!r} is not mergeable, but the "
                        f"{window.policy} policy merges bucket summaries",
                        "use the tumbling policy or a mergeable processor")
        for index, entry in entries.items():
            seed_param = entry.seed_param
            if seed_param is not None and seed_param in spec.processors[index].params:
                # Per-bucket instances are seeded from window.seed (by
                # global bucket index); a processor-level seed would be
                # silently overwritten, so reject it outright.
                bad(f"processors[{index}].params",
                    f"{seed_param!r} has no effect under a window spec — "
                    f"per-bucket seeds derive from window.seed",
                    f"remove it, or set window.seed instead")

    execution = spec.execution
    if execution.backend not in BACKENDS:
        bad("execution.backend",
            f"unknown backend {execution.backend!r}",
            f"expected one of {BACKENDS}")
    if execution.workers < 1:
        bad("execution.workers",
            f"workers must be >= 1, got {execution.workers}")
    if execution.workers > 1 and execution.backend != "sharded":
        bad("execution.workers",
            f"workers={execution.workers} requires the sharded backend, "
            f"got backend={execution.backend!r}",
            "set execution.backend='sharded'")
    if execution.backend == "sharded":
        for index, entry in entries.items():
            if not entry.mergeable:
                bad(f"processors[{index}].name",
                    f"{entry.name!r} is not mergeable and cannot run on "
                    f"the sharded backend",
                    "use the fanout or serial backend")
    if execution.retries < 0:
        bad("execution.retries",
            f"retries must be >= 0, got {execution.retries}")
    if execution.timeout_s is not None and not execution.timeout_s > 0:
        bad("execution.timeout_s",
            f"timeout_s must be > 0, got {execution.timeout_s}")
    if execution.on_failure not in ON_FAILURE_POLICIES:
        bad("execution.on_failure",
            f"unknown failure policy {execution.on_failure!r}",
            f"expected one of {ON_FAILURE_POLICIES}")
    elif execution.on_failure != "raise" and execution.backend != "sharded":
        bad("execution.on_failure",
            f"on_failure={execution.on_failure!r} requires the sharded "
            f"backend, got backend={execution.backend!r}",
            "only sharded file-source workers can be retried")

    checkpoint = spec.checkpoint
    if checkpoint is not None:
        if checkpoint.every < 1:
            bad("checkpoint.every",
                f"every must be >= 1, got {checkpoint.every}")
        if source.kind != "file":
            bad("checkpoint.dir",
                f"checkpointing requires a file source, got "
                f"kind={source.kind!r}",
                "resume re-opens the stream file at the saved offset, "
                "which only a persisted stream supports")
        if execution.backend == "serial":
            bad("checkpoint.dir",
                "checkpointing requires the fanout or sharded backend, "
                "got backend='serial'")

    return diagnostics
