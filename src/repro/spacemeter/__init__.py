"""Uniform space accounting for streaming data structures.

The paper states its results in bits of working memory.  Python object
sizes say nothing useful about that, so every streaming structure in this
library implements the :class:`SpaceMetered` protocol and reports the
number of *machine words* a careful C implementation would retain: one
word per stored counter, one word per stored vertex identifier, two words
per stored edge, and so on.  Benchmarks compare these counts against the
paper's bounds.

The conversion between words and bits uses ``WORD_BITS`` (64) so that the
poly-logarithmic factors in the paper's bounds (an edge costs
``O(log n)`` bits) appear as a constant number of words for the problem
sizes we run.
"""

from repro.spacemeter.meter import (
    WORD_BITS,
    SpaceBreakdown,
    SpaceMetered,
    edge_words,
    vertex_words,
    words_to_bits,
)
from repro.spacemeter.tracker import SpaceTracker

__all__ = [
    "WORD_BITS",
    "SpaceBreakdown",
    "SpaceMetered",
    "SpaceTracker",
    "edge_words",
    "vertex_words",
    "words_to_bits",
]
