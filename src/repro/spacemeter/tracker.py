"""Peak-space tracking over a stream's lifetime.

``space_words()`` reports *current* retained state, but streaming space
complexity is about the *maximum* over the run.  :class:`SpaceTracker`
wraps any algorithm exposing ``process_item`` and ``space_words`` and
samples the space at a configurable update interval, recording the peak
and a (time, words) trace for plotting-style analysis in benchmarks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.streams.edge import StreamItem
from repro.streams.stream import EdgeStream


class SpaceTracker:
    """Wrap an algorithm and record its space profile during a stream.

    Args:
        algorithm: any object with ``process_item(item)`` and
            ``space_words()``.
        sample_every: measure space every this many updates (1 = every
            update; raise it for long streams).
    """

    def __init__(self, algorithm, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.algorithm = algorithm
        self.sample_every = sample_every
        self._updates = 0
        self.peak_words = algorithm.space_words()
        self.trace: List[Tuple[int, int]] = [(0, self.peak_words)]

    def process_item(self, item: StreamItem) -> None:
        """Forward one update, sampling space on the configured cadence."""
        self.algorithm.process_item(item)
        self._updates += 1
        if self._updates % self.sample_every == 0:
            words = self.algorithm.space_words()
            self.trace.append((self._updates, words))
            if words > self.peak_words:
                self.peak_words = words

    def process(self, stream: EdgeStream) -> "SpaceTracker":
        """Forward an entire stream; a final sample is always taken."""
        for item in stream:
            self.process_item(item)
        if self._updates % self.sample_every != 0:
            words = self.algorithm.space_words()
            self.trace.append((self._updates, words))
            self.peak_words = max(self.peak_words, words)
        return self

    @property
    def updates_seen(self) -> int:
        return self._updates

    def final_words(self) -> int:
        """Space retained after the last update."""
        return self.algorithm.space_words()
