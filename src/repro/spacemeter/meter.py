"""Word-level space accounting primitives.

Every streaming structure reports its retained state in machine words via
``space_words()``.  A *word* is a 64-bit quantity able to hold a vertex
identifier, a counter, or a hash-function coefficient for any problem
size this library runs (``n, m <= 2**60``).

The accounting rules, used consistently across the library:

* a stored vertex identifier or counter costs :func:`vertex_words` (1),
* a stored edge costs :func:`edge_words` (2: both endpoints),
* a hash function of independence ``k`` costs ``k`` words (its
  coefficients),
* auxiliary scalars (loop counters, thresholds) owned by a structure cost
  one word each and are reported in the structure's breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol, runtime_checkable

#: Number of bits in one accounting word.
WORD_BITS = 64


def vertex_words(count: int = 1) -> int:
    """Words needed to store ``count`` vertex identifiers or counters."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return count


def edge_words(count: int = 1) -> int:
    """Words needed to store ``count`` edges (two endpoints each)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return 2 * count


def words_to_bits(words: int) -> int:
    """Convert an accounting word count to bits."""
    return words * WORD_BITS


@runtime_checkable
class SpaceMetered(Protocol):
    """Protocol implemented by every space-accounted structure."""

    def space_words(self) -> int:
        """Total machine words currently retained by the structure."""
        ...


@dataclass
class SpaceBreakdown:
    """Itemised space report for a composite structure.

    Components map a human-readable label (``"reservoir"``,
    ``"degree counts"``) to a word count.  The breakdown is what the
    space benchmarks print next to the paper's predicted terms.
    """

    components: Dict[str, int] = field(default_factory=dict)

    def add(self, label: str, words: int) -> None:
        """Add ``words`` to component ``label`` (creating it if absent)."""
        if words < 0:
            raise ValueError(f"negative space for {label!r}: {words}")
        self.components[label] = self.components.get(label, 0) + words

    def merge(self, other: "SpaceBreakdown", prefix: str = "") -> None:
        """Fold ``other`` into this breakdown, optionally prefixing labels."""
        for label, words in other.components.items():
            self.add(prefix + label, words)

    def total_words(self) -> int:
        """Sum of all component word counts."""
        return sum(self.components.values())

    def total_bits(self) -> int:
        """Total space in bits."""
        return words_to_bits(self.total_words())

    def __str__(self) -> str:
        rows = [f"  {label}: {words} words" for label, words in sorted(self.components.items())]
        rows.append(f"  TOTAL: {self.total_words()} words ({self.total_bits()} bits)")
        return "\n".join(rows)
