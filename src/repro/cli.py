"""Command-line interface: run FEwW algorithms on synthetic workloads.

Subcommands:

* ``run`` — build a workload (generated, or loaded with
  ``--stream-file``), stream it through the batch execution engine
  (:class:`~repro.engine.FanoutRunner`), print the verified result and
  space accounting; ``--save-stream`` persists the workload for replay;
* ``persist`` — inspect (``info``) and convert (``convert``) persisted
  stream files between the v1 text and v2 columnar NPZ formats;
* ``bounds`` — print the paper's predicted space bounds for given
  parameters (both models, upper and lower);
* ``figures`` — print the paper's three figures as executable
  constructions (delegates to the same code the tests assert on).

Examples::

    python -m repro run --workload star --n 1000 --d 200 --alpha 2
    python -m repro run --workload churn --algorithm insertion-deletion
    python -m repro run --workload zipf --save-stream zipf.npz
    python -m repro run --stream-file zipf.npz --d 64
    python -m repro persist info zipf.npz
    python -m repro persist convert zipf.npz zipf.txt
    python -m repro bounds --n 4096 --d 128 --alpha 2
    python -m repro figures
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, verify_neighbourhood
from repro.engine import FanoutRunner
from repro.streams.columnar import DEFAULT_CHUNK_SIZE, ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    degree_cascade_graph,
    deletion_churn_stream,
    planted_star_graph,
    zipf_frequency_stream,
)
from repro.streams.persist import (
    StreamFormatError,
    detect_version,
    dump_stream,
    load_columnar,
)
from repro.theory.bounds import (
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
    insertion_only_lower_bound_words,
    insertion_only_space_words,
)

WORKLOADS = ("star", "cascade", "adversarial", "zipf", "churn")
ALGORITHMS = ("insertion-only", "insertion-deletion")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frequent Elements with Witnesses — paper reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run an algorithm on a workload")
    run.add_argument("--workload", choices=WORKLOADS, default="star")
    run.add_argument("--algorithm", choices=ALGORITHMS, default="insertion-only")
    run.add_argument("--n", type=int, default=512, help="number of items (A-vertices)")
    run.add_argument("--m", type=int, default=4096, help="number of witnesses (B-vertices)")
    run.add_argument("--d", type=int, default=128, help="degree threshold")
    run.add_argument("--alpha", type=int, default=2, help="approximation factor")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scale", type=float, default=0.25,
                     help="sampler-count scale for insertion-deletion runs")
    run.add_argument("--stream-file", type=Path, metavar="PATH",
                     help="replay a persisted stream (v1 text or v2 NPZ) "
                          "instead of generating --workload")
    run.add_argument("--save-stream", type=Path, metavar="PATH",
                     help="persist the workload before running it "
                          "(.npz suffix selects the columnar v2 format)")
    run.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                     help="updates per engine chunk")

    persist = subparsers.add_parser(
        "persist", help="inspect and convert persisted stream files"
    )
    persist_commands = persist.add_subparsers(dest="persist_command", required=True)
    info = persist_commands.add_parser(
        "info", help="print a stream file's format, dimensions, and stats"
    )
    info.add_argument("file", type=Path)
    convert = persist_commands.add_parser(
        "convert", help="re-encode a stream file (v1 text <-> v2 NPZ)"
    )
    convert.add_argument("source", type=Path)
    convert.add_argument("destination", type=Path)
    convert.add_argument("--format", choices=("v1", "v2", "auto"), default="auto",
                         help="target format (auto: .npz suffix means v2)")

    bounds = subparsers.add_parser("bounds", help="print the paper's space bounds")
    bounds.add_argument("--n", type=int, default=4096)
    bounds.add_argument("--m", type=int, default=4096)
    bounds.add_argument("--d", type=int, default=128)
    bounds.add_argument("--alpha", type=int, default=2)

    subparsers.add_parser("figures", help="print the paper's Figures 1-3")
    return parser


def make_workload(args: argparse.Namespace):
    """Build the stream for the requested workload (ground truth known)."""
    config = GeneratorConfig(n=args.n, m=args.m, seed=args.seed)
    if args.workload == "star":
        return planted_star_graph(config, star_degree=args.d,
                                  background_degree=min(5, args.d - 1))
    if args.workload == "cascade":
        return degree_cascade_graph(config, d=args.d, alpha=max(2, args.alpha))
    if args.workload == "adversarial":
        return adversarial_interleaved_stream(
            config, star_degree=args.d,
            n_decoys=min(args.n - 1, 30),
            decoy_degree=max(1, args.d // 2),
        )
    if args.workload == "zipf":
        return zipf_frequency_stream(config, n_records=min(args.m, 8 * args.d))
    if args.workload == "churn":
        return deletion_churn_stream(config, star_degree=args.d,
                                     churn_edges=4 * args.d)
    raise ValueError(f"unknown workload {args.workload!r}")


def _load_run_stream(args: argparse.Namespace) -> ColumnarEdgeStream:
    """The columnar stream a `run` invocation operates on."""
    if args.stream_file is not None:
        return load_columnar(args.stream_file)
    generated = make_workload(args)
    columnar = ColumnarEdgeStream.from_edge_stream(generated)
    if args.save_stream is not None:
        dump_stream(
            columnar,
            args.save_stream,
            format="auto",
            trailer=f"workload={args.workload} seed={args.seed}",
        )
        print(f"stream saved to {args.save_stream}")
    return columnar


def command_run(args: argparse.Namespace) -> int:
    if args.stream_file is not None and args.save_stream is not None:
        print("error: --save-stream only applies to generated workloads; "
              "use `persist convert` to re-encode an existing stream file",
              file=sys.stderr)
        return 2
    try:
        stream = _load_run_stream(args)
    except (StreamFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    source = (
        f"file {args.stream_file}" if args.stream_file is not None
        else f"workload '{args.workload}'"
    )
    d = args.d if args.workload != "zipf" or args.stream_file else stream.max_degree()
    print(f"{source}: {stream.stats()}")
    if args.algorithm == "insertion-only":
        if not stream.insertion_only:
            print("error: workload contains deletions; "
                  "use --algorithm insertion-deletion", file=sys.stderr)
            return 2
        algorithm = InsertionOnlyFEwW(stream.n, d, args.alpha, seed=args.seed)
    else:
        algorithm = InsertionDeletionFEwW(
            stream.n, stream.m, d, args.alpha, seed=args.seed, scale=args.scale
        )
    # One engine pass; the runner generalises to N structures per pass.
    # result() is queried directly (not via finalize) so the failure
    # diagnostics reach the user.
    runner = FanoutRunner({"algorithm": algorithm}, chunk_size=args.chunk_size)
    runner.process(stream)
    try:
        result = algorithm.result()
    except AlgorithmFailed as failure:
        print(f"algorithm reported fail: {failure}")
        return 1
    verify_neighbourhood(result, stream.to_edge_stream(), d, args.alpha)
    print(f"reported: {result}")
    print(f"threshold d/alpha = {d / args.alpha:.1f}; verified against "
          f"ground truth: OK")
    print(f"space: {algorithm.space_words()} words")
    print(algorithm.space_breakdown())
    return 0


def command_persist(args: argparse.Namespace) -> int:
    try:
        if args.persist_command == "info":
            version = detect_version(args.file)
            stream = load_columnar(args.file)
            print(f"{args.file}: feww-stream v{version} "
                  f"n={stream.n} m={stream.m}")
            print(f"  {stream.stats()}")
            return 0
        if args.persist_command == "convert":
            stream = load_columnar(args.source)
            dump_stream(stream, args.destination, format=args.format)
            print(f"wrote {args.destination} "
                  f"(feww-stream v{detect_version(args.destination)}, "
                  f"{len(stream)} updates)")
            return 0
    except (StreamFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled persist command {args.persist_command!r}")


def command_bounds(args: argparse.Namespace) -> int:
    n, m, d, alpha = args.n, args.m, args.d, args.alpha
    print(f"paper bounds for n={n}, m={m}, d={d}, alpha={alpha} (words):")
    print(f"  insertion-only upper  (Thm 3.2): "
          f"{insertion_only_space_words(n, d, alpha)}")
    if alpha >= 2:
        print(f"  insertion-only lower  (Thm 4.1+4.8): "
              f"{insertion_only_lower_bound_words(n, d, alpha):.0f}")
    print(f"  insertion-del. upper  (Thm 5.4): "
          f"{insertion_deletion_space_words(n, m, d, alpha)}")
    print(f"  insertion-del. lower  (Thm 6.4): "
          f"{insertion_deletion_lower_bound_words(n, d, alpha):.0f}")
    return 0


def command_figures(_: argparse.Namespace) -> int:
    from repro.comm.figures import render_figures

    print(render_figures())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "persist":
        return command_persist(args)
    if args.command == "bounds":
        return command_bounds(args)
    if args.command == "figures":
        return command_figures(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
