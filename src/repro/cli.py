"""Command-line interface: a thin client of :mod:`repro.pipeline`.

Subcommands:

* ``run`` — assemble a declarative :class:`~repro.pipeline.Pipeline`
  from the flags (workload/file source × optional window policy ×
  serial-or-sharded backend × algorithm) and execute it, printing the
  verified result and space accounting; ``--spec job.json`` runs a
  JSON pipeline spec directly instead of flags.  ``--save-stream``
  persists the workload for replay; ``--mmap`` memory-maps a v2 stream
  file so larger-than-RAM workloads stream without materialising
  (``--readahead`` overlaps upcoming chunks' page-in with compute,
  ``--readahead-depth`` sets how many stay in flight);
  ``--window-policy tumbling|sliding|decay`` runs the algorithm under
  an engine window policy (``--window`` span, ``--bucket-ratio`` for
  the smooth-histogram sliding window, ``--decay-keep`` for
  count-based decay) and reports per-window answers;
  ``--checkpoint-dir``/``--checkpoint-every`` snapshot progress so an
  interrupted run continues with ``--resume``, and
  ``--retries``/``--timeout-s``/``--on-failure`` govern sharded-worker
  failure recovery (all of these also override a ``--spec`` file's own
  settings);
* ``pipeline describe`` — print the processor/generator registries
  (every name a spec can reference, with parameters);
* ``persist`` — inspect (``info``) and convert (``convert``) persisted
  stream files between the v1 text and v2 columnar NPZ formats;
* ``bounds`` — print the paper's predicted space bounds for given
  parameters (both models, upper and lower);
* ``bench report`` — print the per-structure throughput trend across
  the ``BENCH_throughput.json`` run history written by
  ``scripts/bench_quick.py``;
* ``analyze`` — run the static invariant linter + registry contract
  auditor over the package sources (``--strict`` is the CI gate,
  ``--json`` the machine-readable report, ``--diff REV`` restricts to
  files changed since a revision; see :mod:`repro.analysis`);
* ``figures`` — print the paper's three figures as executable
  constructions (delegates to the same code the tests assert on).

Examples::

    python -m repro run --workload star --n 1000 --d 200 --alpha 2
    python -m repro run --workload churn --algorithm insertion-deletion
    python -m repro run --workload zipf --save-stream zipf.npz
    python -m repro run --stream-file zipf.npz --d 64
    python -m repro run --stream-file zipf.npz --d 64 --workers 4 --mmap
    python -m repro run --workload zipf --window-policy sliding --window 2048
    python -m repro run --workload star --window-policy tumbling --window 4096 --workers 4
    python -m repro run --spec job.json
    python -m repro run --spec job.json --checkpoint-dir ckpt --checkpoint-every 8
    python -m repro run --spec job.json --checkpoint-dir ckpt --resume
    python -m repro run --stream-file zipf.npz --workers 4 --retries 3 --timeout-s 60
    python -m repro pipeline describe
    python -m repro persist info zipf.npz
    python -m repro persist convert zipf.npz zipf.txt
    python -m repro bounds --n 4096 --d 128 --alpha 2
    python -m repro bench report --artifact BENCH_throughput.json
    python -m repro analyze --strict
    python -m repro analyze --diff HEAD~1 --json
    python -m repro figures
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.neighbourhood import AlgorithmFailed, verify_neighbourhood
from repro.engine.sharded import ON_FAILURE_POLICIES, ShardedWorkerError
from repro.pipeline import (
    GENERATORS,
    PROCESSORS,
    CheckpointSpec,
    ExecSpec,
    Pipeline,
    PipelineSpec,
    ProcessorSpec,
    SourceSpec,
    SpecError,
    WindowSpec,
)
from repro.pipeline import pipeline as pipeline_module
from repro.streams.columnar import DEFAULT_CHUNK_SIZE
from repro.streams.persist import (
    StreamFormatError,
    detect_version,
    dump_stream,
    load_columnar,
    stream_has_timestamps,
)
from repro.theory.bounds import (
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
    insertion_only_lower_bound_words,
    insertion_only_space_words,
)

WORKLOADS = ("star", "cascade", "adversarial", "zipf", "churn")
ALGORITHMS = ("insertion-only", "insertion-deletion")
WINDOW_POLICIES = ("tumbling", "sliding", "decay")


def make_window_policy(args: argparse.Namespace):
    """Deprecated shim: the WindowPolicy a ``--window-policy`` run asks
    for.  Use :func:`repro.pipeline.make_window_policy` on a
    :class:`~repro.pipeline.WindowSpec` instead."""
    warnings.warn(
        "repro.cli.make_window_policy is deprecated; build a "
        "repro.pipeline.WindowSpec and use "
        "repro.pipeline.make_window_policy",
        DeprecationWarning,
        stacklevel=2,
    )
    return pipeline_module.make_window_policy(_window_spec_from_args(args))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frequent Elements with Witnesses — paper reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run an algorithm on a workload")
    run.add_argument("--spec", type=Path, metavar="PATH",
                     help="run a JSON pipeline spec (see the README's "
                          "Pipeline API section); all other run flags "
                          "are ignored")
    run.add_argument("--workload", choices=WORKLOADS, default="star")
    run.add_argument("--algorithm", choices=ALGORITHMS, default="insertion-only")
    run.add_argument("--n", type=int, default=512, help="number of items (A-vertices)")
    run.add_argument("--m", type=int, default=4096, help="number of witnesses (B-vertices)")
    run.add_argument("--d", type=int, default=128, help="degree threshold")
    run.add_argument("--alpha", type=int, default=2, help="approximation factor")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scale", type=float, default=0.25,
                     help="sampler-count scale for insertion-deletion runs")
    run.add_argument("--stream-file", type=Path, metavar="PATH",
                     help="replay a persisted stream (v1 text or v2 NPZ) "
                          "instead of generating --workload")
    run.add_argument("--save-stream", type=Path, metavar="PATH",
                     help="persist the workload before running it "
                          "(.npz suffix selects the columnar v2 format)")
    run.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                     help="updates per engine chunk")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes; >1 shards the stream through "
                          "a multiprocessing ShardedRunner and merges the "
                          "per-shard summaries")
    run.add_argument("--mmap", action="store_true",
                     help="memory-map the v2 stream file instead of loading "
                          "it (requires --stream-file; the out-of-core path)")
    run.add_argument("--readahead", action="store_true",
                     help="prefetch upcoming chunks on background threads "
                          "while the current one is processed (requires "
                          "--mmap; sharded mmap runs enable this "
                          "automatically)")
    run.add_argument("--readahead-depth", type=int, default=1,
                     help="chunks the prefetcher keeps in flight "
                          "(with --readahead or auto-enabled sharded "
                          "readahead)")
    run.add_argument("--window-policy", choices=WINDOW_POLICIES,
                     help="run the algorithm under an engine window policy "
                          "and report per-window answers")
    run.add_argument("--window", type=int, default=4096,
                     help="window span in updates (tumbling/sliding), or "
                          "bucket size (decay)")
    run.add_argument("--bucket-ratio", type=float, default=0.25,
                     help="sliding only: smooth-histogram bucket ratio "
                          "epsilon; the answer covers the last L updates "
                          "with window <= L <= (1+epsilon)*window")
    run.add_argument("--decay-keep", type=int, default=4,
                     help="decay only: recent buckets kept at full "
                          "resolution before folding into the tail")
    fault = run.add_argument_group(
        "fault tolerance",
        "checkpoint/resume and shard-failure policy; with --spec these "
        "override the spec's own checkpoint/execution settings",
    )
    fault.add_argument("--checkpoint-dir", type=Path, metavar="DIR",
                       help="snapshot processor summaries + stream offset "
                            "into DIR as the run progresses (file sources "
                            "only)")
    fault.add_argument("--checkpoint-every", type=int, metavar="N",
                       help="source chunks between snapshots (requires "
                            "--checkpoint-dir or a spec checkpoint)")
    fault.add_argument("--resume", action="store_true",
                       help="continue from the snapshots in the checkpoint "
                            "directory instead of starting over; a resumed "
                            "run's answers are bit-identical to an "
                            "uninterrupted one")
    fault.add_argument("--retries", type=int, metavar="K",
                       help="sharded runs: respawn a dead/timed-out shard "
                            "worker up to K times with exponential backoff")
    fault.add_argument("--timeout-s", type=float, metavar="S",
                       help="sharded runs: per-shard-attempt wall-clock "
                            "timeout in seconds")
    fault.add_argument("--on-failure", choices=ON_FAILURE_POLICIES,
                       help="sharded runs: what to do with a shard that "
                            "still fails after K retries (raise, retry = "
                            "fail fast only after retries, serial_fallback "
                            "= re-run the shard in-process)")

    persist = subparsers.add_parser(
        "persist", help="inspect and convert persisted stream files"
    )
    persist_commands = persist.add_subparsers(dest="persist_command", required=True)
    info = persist_commands.add_parser(
        "info", help="print a stream file's format, dimensions, and stats"
    )
    info.add_argument("file", type=Path)
    convert = persist_commands.add_parser(
        "convert", help="re-encode a stream file (v1 text <-> v2 NPZ)"
    )
    convert.add_argument("source", type=Path)
    convert.add_argument("destination", type=Path)
    convert.add_argument("--format", choices=("v1", "v2", "auto"), default="auto",
                         help="target format (auto: .npz suffix means v2)")

    bounds = subparsers.add_parser("bounds", help="print the paper's space bounds")
    bounds.add_argument("--n", type=int, default=4096)
    bounds.add_argument("--m", type=int, default=4096)
    bounds.add_argument("--d", type=int, default=128)
    bounds.add_argument("--alpha", type=int, default=2)

    pipeline = subparsers.add_parser(
        "pipeline", help="inspect the declarative pipeline registries"
    )
    pipeline_commands = pipeline.add_subparsers(
        dest="pipeline_command", required=True
    )
    pipeline_commands.add_parser(
        "describe",
        help="print every registered processor and generator with its "
             "parameters",
    )

    bench = subparsers.add_parser(
        "bench", help="inspect benchmark artifacts"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    report = bench_commands.add_parser(
        "report",
        help="print the per-structure throughput trend across the "
             "BENCH_throughput.json run history",
    )
    report.add_argument(
        "--artifact", type=Path, default=Path("BENCH_throughput.json"),
        metavar="PATH",
        help="benchmark artifact written by scripts/bench_quick.py "
             "(default: ./BENCH_throughput.json)",
    )
    report.add_argument(
        "--last", type=int, default=8, metavar="N",
        help="show at most the last N history entries (default 8)",
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="static invariant linter + registry contract auditor",
    )
    analyze.add_argument(
        "paths", nargs="*", type=Path, metavar="PATH",
        help="files or directories to lint (default: the installed "
             "repro package sources)",
    )
    analyze.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report instead of text",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on advisory notes too — the CI gate",
    )
    analyze.add_argument(
        "--diff", metavar="REV", default=None,
        help="only report findings in files changed since REV "
             "(committed or not); skips the registry passes for fast "
             "incremental feedback",
    )
    analyze.add_argument(
        "--no-audit", action="store_true",
        help="skip the runtime contract auditor (static rules only)",
    )

    subparsers.add_parser("figures", help="print the paper's Figures 1-3")
    return parser


def make_workload(args: argparse.Namespace):
    """Deprecated shim: build the stream for the requested workload.

    Use a ``generator`` :class:`~repro.pipeline.SourceSpec` (the CLI
    workloads are registered in :data:`repro.pipeline.GENERATORS`
    under the same names with the same parameter derivations).
    """
    warnings.warn(
        "repro.cli.make_workload is deprecated; use a generator "
        "SourceSpec resolved through repro.pipeline.GENERATORS",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.pipeline import GENERATORS, UnknownNameError

    try:
        return GENERATORS.build(args.workload, _workload_params(args))
    except UnknownNameError as error:
        # Shim fidelity: the old factory's error contract.
        raise ValueError(f"unknown workload {args.workload!r}") from error


def _workload_params(args: argparse.Namespace) -> dict:
    """Generator-registry parameters of a flag-driven workload."""
    return {
        "n": args.n,
        "m": args.m,
        "d": args.d,
        "alpha": args.alpha,
        "seed": args.seed,
    }


def _window_spec_from_args(args: argparse.Namespace) -> WindowSpec:
    return WindowSpec(
        policy=args.window_policy,
        window=args.window,
        bucket_ratio=args.bucket_ratio,
        keep=args.decay_keep,
        seed=args.seed,
    )


def _source_spec_from_args(args: argparse.Namespace) -> SourceSpec:
    if args.stream_file is not None:
        return SourceSpec.from_file(
            args.stream_file,
            chunk_size=args.chunk_size,
            mmap=args.mmap,
            # None = auto: sharded mmap passes prefetch on their own.
            readahead=True if args.readahead else None,
            readahead_depth=args.readahead_depth,
        )
    return SourceSpec.from_generator(
        args.workload, _workload_params(args), chunk_size=args.chunk_size
    )


def _pipeline_from_args(
    args: argparse.Namespace, source_spec: SourceSpec, d: int, n: int, m: int
) -> Pipeline:
    """The declarative pipeline a flag-driven ``run`` describes."""
    window = (
        _window_spec_from_args(args) if args.window_policy is not None
        else None
    )
    if args.algorithm == "insertion-only":
        params = {"n": n, "d": d, "alpha": args.alpha}
    else:
        params = {"n": n, "m": m, "d": d, "alpha": args.alpha,
                  "scale": args.scale}
    if window is None:
        # Windowed runs seed per-bucket instances from window.seed; a
        # processor-level seed there is a validation conflict.
        params["seed"] = args.seed
    processor = ProcessorSpec(args.algorithm, params, label="algorithm")
    exec_overrides = {
        key: value
        for key, value in (
            ("retries", args.retries),
            ("timeout_s", args.timeout_s),
            ("on_failure", args.on_failure),
        )
        if value is not None
    }
    execution = (
        ExecSpec("sharded", args.workers, **exec_overrides)
        if args.workers > 1
        else ExecSpec(**exec_overrides)
    )
    checkpoint = None
    if args.checkpoint_dir is not None:
        checkpoint = (
            CheckpointSpec(args.checkpoint_dir, every=args.checkpoint_every)
            if args.checkpoint_every is not None
            else CheckpointSpec(args.checkpoint_dir)
        )
    return Pipeline(
        PipelineSpec(
            source=source_spec,
            processors=(processor,),
            window=window,
            execution=execution,
            checkpoint=checkpoint,
        )
    )


def command_run(args: argparse.Namespace) -> int:
    if args.spec is not None:
        return _run_spec_file(args)
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("error: --checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir (the snapshots "
              "to resume from)", file=sys.stderr)
        return 2
    if args.stream_file is not None and args.save_stream is not None:
        print("error: --save-stream only applies to generated workloads; "
              "use `persist convert` to re-encode an existing stream file",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.mmap and args.stream_file is None:
        print("error: --mmap requires --stream-file (it memory-maps a "
              "persisted v2 stream)", file=sys.stderr)
        return 2
    if args.readahead and not args.mmap:
        print("error: --readahead requires --mmap (it prefetches the "
              "memory-mapped reader's next chunks)", file=sys.stderr)
        return 2
    if args.readahead_depth < 1:
        print("error: --readahead-depth must be >= 1", file=sys.stderr)
        return 2
    source_spec = _source_spec_from_args(args)
    try:
        source = pipeline_module.open_source(source_spec)
    except (StreamFormatError, OSError, SpecError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = source.stream
    n, m = source.n, source.m
    if stream is None:
        print(f"file {args.stream_file} (mmap): feww-stream v2 "
              f"n={n} m={m}, {len(source)} updates")
    else:
        if args.save_stream is not None:
            dump_stream(
                stream,
                args.save_stream,
                format="auto",
                trailer=f"workload={args.workload} seed={args.seed}",
            )
            print(f"stream saved to {args.save_stream}")
        source_label = (
            f"file {args.stream_file}" if args.stream_file is not None
            else f"workload '{args.workload}'"
        )
        print(f"{source_label}: {stream.stats()}")
    d = args.d
    if args.workload == "zipf" and args.stream_file is None:
        d = stream.max_degree()
    if args.algorithm == "insertion-only":
        # In mmap mode the check pages in just the sign column — still
        # far cheaper than crashing mid-run on the first deletion.
        if not source.insertion_only:
            print("error: workload contains deletions; "
                  "use --algorithm insertion-deletion", file=sys.stderr)
            return 2
    try:
        pipeline = _pipeline_from_args(args, source_spec, d, n, m)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        result = pipeline.run(source=source, resume=args.resume)
    except (StreamFormatError, OSError) as error:
        # mmap readers defer range validation to chunk iteration, so a
        # corrupt file can surface here rather than at open time.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ShardedWorkerError as error:
        # A sharded worker reports its failure with structured cause
        # info; keep the friendly exit path for input problems (stream
        # format, I/O), propagate real bugs.
        if error.is_stream_error:
            print(f"error: cannot stream {args.stream_file}: "
                  f"{error.cause_type} in worker:\n{error}", file=sys.stderr)
            return 2
        raise
    algorithm = result.processors["algorithm"]
    if args.workers > 1:
        print(f"sharded over {args.workers} workers "
              f"(routing: {result.report.routing!r})")
    if result.report.checkpoint is not None:
        verb = "resumed from" if result.report.resumed else "checkpointed to"
        print(f"{verb} {result.report.checkpoint['dir']}")
    if result.report.shard_retries:
        print(f"shard retries: {result.report.shard_retries}")
    if args.window_policy is not None:
        report_windowed(args.window_policy, result["algorithm"])
        print(f"space: {algorithm.space_words()} words")
        return 0
    # result() is queried directly (not via the finalized answer) so
    # the failure diagnostics reach the user.
    try:
        answer = algorithm.result()
    except AlgorithmFailed as failure:
        print(f"algorithm reported fail: {failure}")
        return 1
    print(f"reported: {answer}")
    if stream is not None:
        verify_neighbourhood(answer, stream.to_edge_stream(), d, args.alpha)
        print(f"threshold d/alpha = {d / args.alpha:.1f}; verified against "
              f"ground truth: OK")
    else:
        print(f"threshold d/alpha = {d / args.alpha:.1f}; ground-truth "
              f"verification skipped (mmap mode never materialises the "
              f"stream)")
    print(f"space: {algorithm.space_words()} words")
    print(algorithm.space_breakdown())
    return 0


def _apply_spec_overrides(data, args: argparse.Namespace) -> None:
    """Merge the fault-tolerance flags into a spec dict, in place.

    Overrides land before :meth:`PipelineSpec.from_dict`, so the merged
    spec is validated as a whole (e.g. ``--on-failure retry`` against a
    serial-backend spec fails eagerly with the spec layer's own
    diagnostic).  A section that is present but not an object is left
    untouched for ``from_dict`` to diagnose.
    """
    if not isinstance(data, dict):
        return
    execution = {
        key: value
        for key, value in (
            ("retries", args.retries),
            ("timeout_s", args.timeout_s),
            ("on_failure", args.on_failure),
        )
        if value is not None
    }
    base = data.get("execution")
    if execution and (base is None or isinstance(base, dict)):
        merged = dict(base or {})
        merged.update(execution)
        data["execution"] = merged
    checkpoint = {}
    if args.checkpoint_dir is not None:
        checkpoint["dir"] = str(args.checkpoint_dir)
    if args.checkpoint_every is not None:
        checkpoint["every"] = args.checkpoint_every
    base = data.get("checkpoint")
    if checkpoint and (base is None or isinstance(base, dict)):
        merged = dict(base or {})
        merged.update(checkpoint)
        data["checkpoint"] = merged


def _run_spec_file(args: argparse.Namespace) -> int:
    """``run --spec job.json``: execute a JSON pipeline spec.

    The fault-tolerance flags compose with the file:
    ``--checkpoint-dir``/``--checkpoint-every`` and
    ``--retries``/``--timeout-s``/``--on-failure`` override the spec's
    own sections, and ``--resume`` continues from the (possibly
    overridden) checkpoint directory.
    """
    path = args.spec
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        print(f"error: invalid spec {path}: spec is not valid JSON: "
              f"{error}", file=sys.stderr)
        return 2
    try:
        _apply_spec_overrides(data, args)
        pipeline = Pipeline.from_dict(data)
    except SpecError as error:
        print(f"error: invalid spec {path}: {error}", file=sys.stderr)
        return 2
    try:
        result = pipeline.run(resume=args.resume)
    except SpecError as error:
        # Run-time spec conflicts, e.g. --resume against a spec with no
        # checkpoint section (and no --checkpoint-dir override).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ShardedWorkerError as error:
        if error.is_stream_error:
            print(f"error: {error.cause_type} in worker:\n{error}",
                  file=sys.stderr)
            return 2
        raise
    except (StreamFormatError, OSError, ValueError) as error:
        # ValueError covers input mismatches a spec can't express
        # statically — e.g. a deletion-bearing source fed to an
        # insertion-only processor (the flag path pre-checks this, the
        # spec path surfaces the processor's own diagnostic).
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"spec: {path}")
    print(json.dumps(result.to_dict(), indent=2))
    return 0


def _describe_window_value(value) -> str:
    """Human line for one window's finalized answer."""
    if value is None:
        return "no qualifying vertex"
    if hasattr(value, "vertex") and hasattr(value, "size"):
        return f"vertex {value.vertex} with {value.size} witnesses"
    return repr(value)


def report_windowed(policy_name: str, answer) -> None:
    """Print a window policy's end-of-stream answer."""
    if policy_name == "tumbling":
        print(f"{len(answer)} completed window(s):")
        for record in answer:
            print(f"  window {record.window_index} "
                  f"[{record.start_update}, {record.end_update}): "
                  f"{_describe_window_value(record.value)}")
        return
    if policy_name == "sliding":
        print(f"sliding window (smooth histogram, {answer.n_buckets} "
              f"bucket(s) of {answer.bucket}):")
        print(f"  covered updates [{answer.start_update}, "
              f"{answer.end_update}) — span {answer.span} for a "
              f"requested window of {answer.window}")
        print(f"  answer: {_describe_window_value(answer.value)}")
        return
    print(f"decay: {len(answer.recent)} recent bucket(s)"
          + (", plus decayed tail" if answer.has_tail else ", no tail yet"))
    for record in answer.recent:
        print(f"  bucket {record.window_index} "
              f"[{record.start_update}, {record.end_update}): "
              f"{_describe_window_value(record.value)}")
    if answer.has_tail:
        print(f"  tail [{answer.tail_start_update}, "
              f"{answer.tail_end_update}): "
              f"{_describe_window_value(answer.tail_value)}")


def command_persist(args: argparse.Namespace) -> int:
    try:
        if args.persist_command == "info":
            version = detect_version(args.file)
            stream = load_columnar(args.file)
            label = "v2.1" if stream.has_timestamps else f"v{version}"
            print(f"{args.file}: feww-stream {label} "
                  f"n={stream.n} m={stream.m}")
            print(f"  {stream.stats()}")
            if stream.has_timestamps:
                print(f"  timestamps: [{int(stream.t[0])}, "
                      f"{int(stream.t[-1])}]" if len(stream) else
                      "  timestamps: present (empty stream)")
            return 0
        if args.persist_command == "convert":
            stream = load_columnar(args.source)
            dump_stream(stream, args.destination, format=args.format)
            if stream.has_timestamps and not stream_has_timestamps(
                args.destination
            ):
                print("note: timestamps dropped (the v1 text format has "
                      "no timestamp column)")
            print(f"wrote {args.destination} "
                  f"(feww-stream v{detect_version(args.destination)}, "
                  f"{len(stream)} updates)")
            return 0
    except (StreamFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled persist command {args.persist_command!r}")


def command_pipeline(args: argparse.Namespace) -> int:
    if args.pipeline_command == "describe":
        print("processors:")
        for line in PROCESSORS.describe().splitlines():
            print(f"  {line}")
        print("generators:")
        for line in GENERATORS.describe().splitlines():
            print(f"  {line}")
        return 0
    raise AssertionError(
        f"unhandled pipeline command {args.pipeline_command!r}"
    )


def command_bounds(args: argparse.Namespace) -> int:
    n, m, d, alpha = args.n, args.m, args.d, args.alpha
    print(f"paper bounds for n={n}, m={m}, d={d}, alpha={alpha} (words):")
    print(f"  insertion-only upper  (Thm 3.2): "
          f"{insertion_only_space_words(n, d, alpha)}")
    if alpha >= 2:
        print(f"  insertion-only lower  (Thm 4.1+4.8): "
              f"{insertion_only_lower_bound_words(n, d, alpha):.0f}")
    print(f"  insertion-del. upper  (Thm 5.4): "
          f"{insertion_deletion_space_words(n, m, d, alpha)}")
    print(f"  insertion-del. lower  (Thm 6.4): "
          f"{insertion_deletion_lower_bound_words(n, d, alpha):.0f}")
    return 0


def _bench_history(artifact: dict) -> list:
    """The artifact's run history, oldest first.

    Accepts both formats: the appendable-history artifact (``history``
    array, latest last) and the pre-history single-run artifact (the
    bare dict becomes a one-entry history).
    """
    history = artifact.get("history")
    if isinstance(history, list) and history:
        return [entry for entry in history if isinstance(entry, dict)]
    return [artifact]


def _bench_entry_label(entry: dict) -> str:
    """A short per-run column header: commit if stamped, else host."""
    git = entry.get("git") or {}
    commit = git.get("commit")
    if commit:
        return f"{commit}{'+' if git.get('dirty') else ''}"
    host = entry.get("host") or {}
    return f"{host.get('machine', '?')}/{host.get('effective_cores', '?')}c"


def command_bench(args: argparse.Namespace) -> int:
    if args.bench_command != "report":
        raise AssertionError(f"unhandled bench command {args.bench_command!r}")
    try:
        artifact = json.loads(Path(args.artifact).read_text())
    except FileNotFoundError:
        print(f"error: no benchmark artifact at {args.artifact}; run "
              f"PYTHONPATH=src python scripts/bench_quick.py first",
              file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        print(f"error: cannot read {args.artifact}: {error}", file=sys.stderr)
        return 2
    history = _bench_history(artifact)[-max(args.last, 1):]
    labels = [_bench_entry_label(entry) for entry in history]
    dirty_runs = sum(
        1 for entry in history if (entry.get("git") or {}).get("dirty")
    )
    structures: List[str] = []
    for entry in history:
        for name in (entry.get("results") or {}):
            if name not in structures:
                structures.append(name)
    print(f"throughput trend over {len(history)} run(s) "
          f"(batch k-upd/s, oldest -> latest):")
    if dirty_runs:
        # Dirty-tree rates are not attributable to their commit label —
        # whatever was uncommitted at bench time is invisible to git.
        print(f"  note: {dirty_runs} run(s) marked '+' were benched on a "
              f"dirty working tree (uncommitted changes; rates may not "
              f"match the labelled commit)")
    width = max((len(name) for name in structures), default=8)
    print(f"  {'structure':{width}s}  " + "  ".join(
        f"{label:>12s}" for label in labels))
    for name in structures:
        cells = []
        for entry in history:
            row = (entry.get("results") or {}).get(name)
            rate = row.get("batch_updates_per_s") if row else None
            cells.append(
                f"{rate / 1e3:12.1f}" if rate is not None else f"{'-':>12s}"
            )
        print(f"  {name:{width}s}  " + "  ".join(cells))
    # Star-detection trend: the end-to-end guess-ladder speedup of the
    # engine pass over the per-item reference (the fused shared-pass
    # ladder's acceptance metric), one column per run.
    star_cells = []
    have_star = False
    for entry in history:
        speedup = (entry.get("star_detection") or {}).get("batch_speedup")
        if speedup is None:
            star_cells.append(f"{'-':>12s}")
        else:
            have_star = True
            star_cells.append(f"{speedup:11.1f}x")
    if have_star:
        print("star detection: engine-pass speedup vs per-item ladder:")
        print(f"  {'guess ladder':{width}s}  " + "  ".join(star_cells))
    # Windowed trend: Algorithm 2's engine rate under each window
    # policy (tumbling vs smooth-histogram sliding), one row per policy.
    windowed_rows: Dict[str, List[str]] = {}
    for column, entry in enumerate(history):
        for record in (entry.get("windowed") or {}).get("entries") or []:
            policy = record.get("policy")
            if policy is None:
                continue
            cells = windowed_rows.setdefault(
                policy, [f"{'-':>12s}"] * len(history)
            )
            rate = record.get("updates_per_s")
            if rate is not None:
                cells[column] = f"{rate / 1e3:12.1f}"
    if windowed_rows:
        print("windowed Algorithm 2 (batch k-upd/s by policy):")
        for policy in sorted(windowed_rows):
            print(f"  {policy:{width}s}  " + "  ".join(windowed_rows[policy]))
    # Probe-latency trend: cached sliding query() calls per second at
    # the Pipeline's probe points (the suffix-merge cache's metric).
    probe_cells = []
    have_probes = False
    for entry in history:
        rate = (entry.get("probes") or {}).get("probes_per_s")
        if rate is None:
            probe_cells.append(f"{'-':>12s}")
        else:
            have_probes = True
            probe_cells.append(f"{rate:12.1f}")
    if have_probes:
        print("probe latency (cached sliding query() probes/s):")
        print(f"  {'probes':{width}s}  " + "  ".join(probe_cells))
    # Sharded scaling trend: only worker counts the host could actually
    # scale to — entries flagged gated: false are timesharing numbers,
    # not scaling results, and are excluded from the trend.
    sharded_rows: Dict[int, List[str]] = {}
    any_skipped = False
    for column, entry in enumerate(history):
        entries = (entry.get("sharded") or {}).get("entries") or []
        for record in entries:
            workers = record.get("workers")
            if workers is None:
                continue
            if record.get("gated") is False:
                any_skipped = True
                continue
            cells = sharded_rows.setdefault(
                workers, [f"{'-':>12s}"] * len(history)
            )
            speedup = record.get("speedup_vs_single")
            cells[column] = (
                f"{speedup:11.2f}x" if speedup is not None else f"{'-':>12s}"
            )
    if sharded_rows:
        print("sharded speedup vs single worker (gated entries only):")
        for workers in sorted(sharded_rows):
            print(f"  {f'{workers} worker(s)':{width}s}  "
                  + "  ".join(sharded_rows[workers]))
    elif any_skipped:
        print("sharded trend skipped: no recorded entry was eligible for "
              "the scaling gate on its host (all gated: false)")
    return 0


def command_analyze(args: argparse.Namespace) -> int:
    """``repro analyze``: run the invariant linter + contract auditor.

    Exit codes: 0 clean, 1 findings (advisory notes only fail under
    ``--strict``), 2 usage/environment error (bad path, bad ``--diff``
    revision).
    """
    import subprocess

    from repro.analysis import analyze as run_analysis
    from repro.analysis import render_json, render_text

    package_dir = Path(__file__).resolve().parent
    paths = [Path(p) for p in args.paths] or [package_dir]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    # Repo root for display paths and --diff: the directory holding
    # src/ when running from a checkout, else the package parent.
    root = (
        package_dir.parent.parent
        if package_dir.parent.name == "src"
        else package_dir.parent
    )
    try:
        report = run_analysis(
            paths,
            root=root,
            audit=not args.no_audit,
            diff_rev=args.diff,
        )
    except subprocess.CalledProcessError as error:
        stderr = (error.stderr or "").strip()
        print(
            f"error: git failed resolving --diff {args.diff!r}"
            + (f": {stderr}" if stderr else ""),
            file=sys.stderr,
        )
        return 2
    if args.as_json:
        print(json.dumps(render_json(
            report.diagnostics, files_scanned=report.files_scanned
        ), indent=2))
    else:
        print(render_text(report.diagnostics))
        print(f"({report.files_scanned} file(s) scanned)")
    return report.exit_code(strict=args.strict)


def command_figures(_: argparse.Namespace) -> int:
    from repro.comm.figures import render_figures

    print(render_figures())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "persist":
        return command_persist(args)
    if args.command == "pipeline":
        return command_pipeline(args)
    if args.command == "bounds":
        return command_bounds(args)
    if args.command == "bench":
        return command_bench(args)
    if args.command == "analyze":
        return command_analyze(args)
    if args.command == "figures":
        return command_figures(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
