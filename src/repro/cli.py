"""Command-line interface: run FEwW algorithms on synthetic workloads.

Subcommands:

* ``run`` — build a workload (generated, or loaded with
  ``--stream-file``), stream it through the batch execution engine
  (:class:`~repro.engine.FanoutRunner`, or a multi-core
  :class:`~repro.engine.ShardedRunner` with ``--workers N``), print the
  verified result and space accounting; ``--save-stream`` persists the
  workload for replay; ``--mmap`` memory-maps a v2 stream file so
  larger-than-RAM workloads stream without materialising
  (``--readahead`` overlaps the next chunk's page-in with compute);
  ``--window-policy tumbling|sliding|decay`` runs the algorithm under
  an engine window policy (``--window`` span, ``--bucket-ratio`` for
  the smooth-histogram sliding window, ``--decay-keep`` for
  count-based decay) and reports per-window answers;
* ``persist`` — inspect (``info``) and convert (``convert``) persisted
  stream files between the v1 text and v2 columnar NPZ formats;
* ``bounds`` — print the paper's predicted space bounds for given
  parameters (both models, upper and lower);
* ``figures`` — print the paper's three figures as executable
  constructions (delegates to the same code the tests assert on).

Examples::

    python -m repro run --workload star --n 1000 --d 200 --alpha 2
    python -m repro run --workload churn --algorithm insertion-deletion
    python -m repro run --workload zipf --save-stream zipf.npz
    python -m repro run --stream-file zipf.npz --d 64
    python -m repro run --stream-file zipf.npz --d 64 --workers 4 --mmap
    python -m repro run --workload zipf --window-policy sliding --window 2048
    python -m repro run --workload star --window-policy tumbling --window 4096 --workers 4
    python -m repro persist info zipf.npz
    python -m repro persist convert zipf.npz zipf.txt
    python -m repro bounds --n 4096 --d 128 --alpha 2
    python -m repro figures
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, verify_neighbourhood
from repro.core.windowed import Alg2WindowFactory, Alg3WindowFactory
from repro.engine import (
    DecayPolicy,
    FanoutRunner,
    ShardedRunner,
    SlidingPolicy,
    TumblingPolicy,
    WindowedProcessor,
)
from repro.engine.sharded import ShardedWorkerError
from repro.streams.columnar import DEFAULT_CHUNK_SIZE, ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    degree_cascade_graph,
    deletion_churn_stream,
    planted_star_graph,
    zipf_frequency_stream,
)
from repro.streams.persist import (
    ChunkedStreamReader,
    StreamFormatError,
    detect_version,
    dump_stream,
    load_columnar,
    stream_has_timestamps,
)
from repro.theory.bounds import (
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
    insertion_only_lower_bound_words,
    insertion_only_space_words,
)

WORKLOADS = ("star", "cascade", "adversarial", "zipf", "churn")
ALGORITHMS = ("insertion-only", "insertion-deletion")
WINDOW_POLICIES = ("tumbling", "sliding", "decay")


def make_window_policy(args: argparse.Namespace):
    """The WindowPolicy a ``--window-policy`` invocation asked for."""
    if args.window_policy == "tumbling":
        return TumblingPolicy(args.window)
    if args.window_policy == "sliding":
        return SlidingPolicy(args.window, bucket_ratio=args.bucket_ratio)
    if args.window_policy == "decay":
        return DecayPolicy(args.window, keep=args.decay_keep)
    raise ValueError(f"unknown window policy {args.window_policy!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frequent Elements with Witnesses — paper reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run an algorithm on a workload")
    run.add_argument("--workload", choices=WORKLOADS, default="star")
    run.add_argument("--algorithm", choices=ALGORITHMS, default="insertion-only")
    run.add_argument("--n", type=int, default=512, help="number of items (A-vertices)")
    run.add_argument("--m", type=int, default=4096, help="number of witnesses (B-vertices)")
    run.add_argument("--d", type=int, default=128, help="degree threshold")
    run.add_argument("--alpha", type=int, default=2, help="approximation factor")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scale", type=float, default=0.25,
                     help="sampler-count scale for insertion-deletion runs")
    run.add_argument("--stream-file", type=Path, metavar="PATH",
                     help="replay a persisted stream (v1 text or v2 NPZ) "
                          "instead of generating --workload")
    run.add_argument("--save-stream", type=Path, metavar="PATH",
                     help="persist the workload before running it "
                          "(.npz suffix selects the columnar v2 format)")
    run.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                     help="updates per engine chunk")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes; >1 shards the stream through "
                          "a multiprocessing ShardedRunner and merges the "
                          "per-shard summaries")
    run.add_argument("--mmap", action="store_true",
                     help="memory-map the v2 stream file instead of loading "
                          "it (requires --stream-file; the out-of-core path)")
    run.add_argument("--readahead", action="store_true",
                     help="prefetch the next chunk on a background thread "
                          "while the current one is processed (requires "
                          "--mmap)")
    run.add_argument("--window-policy", choices=WINDOW_POLICIES,
                     help="run the algorithm under an engine window policy "
                          "and report per-window answers")
    run.add_argument("--window", type=int, default=4096,
                     help="window span in updates (tumbling/sliding), or "
                          "bucket size (decay)")
    run.add_argument("--bucket-ratio", type=float, default=0.25,
                     help="sliding only: smooth-histogram bucket ratio "
                          "epsilon; the answer covers the last L updates "
                          "with window <= L <= (1+epsilon)*window")
    run.add_argument("--decay-keep", type=int, default=4,
                     help="decay only: recent buckets kept at full "
                          "resolution before folding into the tail")

    persist = subparsers.add_parser(
        "persist", help="inspect and convert persisted stream files"
    )
    persist_commands = persist.add_subparsers(dest="persist_command", required=True)
    info = persist_commands.add_parser(
        "info", help="print a stream file's format, dimensions, and stats"
    )
    info.add_argument("file", type=Path)
    convert = persist_commands.add_parser(
        "convert", help="re-encode a stream file (v1 text <-> v2 NPZ)"
    )
    convert.add_argument("source", type=Path)
    convert.add_argument("destination", type=Path)
    convert.add_argument("--format", choices=("v1", "v2", "auto"), default="auto",
                         help="target format (auto: .npz suffix means v2)")

    bounds = subparsers.add_parser("bounds", help="print the paper's space bounds")
    bounds.add_argument("--n", type=int, default=4096)
    bounds.add_argument("--m", type=int, default=4096)
    bounds.add_argument("--d", type=int, default=128)
    bounds.add_argument("--alpha", type=int, default=2)

    subparsers.add_parser("figures", help="print the paper's Figures 1-3")
    return parser


def make_workload(args: argparse.Namespace):
    """Build the stream for the requested workload (ground truth known)."""
    config = GeneratorConfig(n=args.n, m=args.m, seed=args.seed)
    if args.workload == "star":
        return planted_star_graph(config, star_degree=args.d,
                                  background_degree=min(5, args.d - 1))
    if args.workload == "cascade":
        return degree_cascade_graph(config, d=args.d, alpha=max(2, args.alpha))
    if args.workload == "adversarial":
        return adversarial_interleaved_stream(
            config, star_degree=args.d,
            n_decoys=min(args.n - 1, 30),
            decoy_degree=max(1, args.d // 2),
        )
    if args.workload == "zipf":
        return zipf_frequency_stream(config, n_records=min(args.m, 8 * args.d))
    if args.workload == "churn":
        return deletion_churn_stream(config, star_degree=args.d,
                                     churn_edges=4 * args.d)
    raise ValueError(f"unknown workload {args.workload!r}")


def _load_run_stream(args: argparse.Namespace) -> ColumnarEdgeStream:
    """The columnar stream a `run` invocation operates on."""
    if args.stream_file is not None:
        return load_columnar(args.stream_file)
    generated = make_workload(args)
    columnar = ColumnarEdgeStream.from_edge_stream(generated)
    if args.save_stream is not None:
        dump_stream(
            columnar,
            args.save_stream,
            format="auto",
            trailer=f"workload={args.workload} seed={args.seed}",
        )
        print(f"stream saved to {args.save_stream}")
    return columnar


def command_run(args: argparse.Namespace) -> int:
    if args.stream_file is not None and args.save_stream is not None:
        print("error: --save-stream only applies to generated workloads; "
              "use `persist convert` to re-encode an existing stream file",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.mmap and args.stream_file is None:
        print("error: --mmap requires --stream-file (it memory-maps a "
              "persisted v2 stream)", file=sys.stderr)
        return 2
    if args.readahead and not args.mmap:
        print("error: --readahead requires --mmap (it prefetches the "
              "memory-mapped reader's next chunk)", file=sys.stderr)
        return 2
    stream: Optional[ColumnarEdgeStream] = None
    try:
        if args.mmap:
            # Out-of-core path: only the zip directory and npy headers
            # are touched here; chunks page in during the engine pass.
            reader = ChunkedStreamReader(
                args.stream_file, mmap=True, readahead=args.readahead
            )
            if reader.version != 2:
                print("error: --mmap requires a v2 (NPZ) stream file; "
                      "convert with `persist convert`", file=sys.stderr)
                return 2
            n, m = reader.n, reader.m
            print(f"file {args.stream_file} (mmap): feww-stream v2 "
                  f"n={n} m={m}, {len(reader)} updates")
        else:
            stream = _load_run_stream(args)
            n, m = stream.n, stream.m
            source_label = (
                f"file {args.stream_file}" if args.stream_file is not None
                else f"workload '{args.workload}'"
            )
            print(f"{source_label}: {stream.stats()}")
    except (StreamFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    d = args.d
    if args.workload == "zipf" and args.stream_file is None:
        d = stream.max_degree()
    if args.algorithm == "insertion-only":
        # In mmap mode the check pages in just the sign column — still
        # far cheaper than crashing mid-run on the first deletion.
        source_is_insertion_only = (
            stream.insertion_only if stream is not None
            else reader.insertion_only
        )
        if not source_is_insertion_only:
            print("error: workload contains deletions; "
                  "use --algorithm insertion-deletion", file=sys.stderr)
            return 2
        algorithm = InsertionOnlyFEwW(n, d, args.alpha, seed=args.seed)
    else:
        algorithm = InsertionDeletionFEwW(
            n, m, d, args.alpha, seed=args.seed, scale=args.scale
        )
    windowed = args.window_policy is not None
    if windowed:
        if args.algorithm == "insertion-only":
            factory = Alg2WindowFactory(n, d, args.alpha)
        else:
            factory = Alg3WindowFactory(n, m, d, args.alpha, args.scale)
        try:
            algorithm = WindowedProcessor(
                factory, make_window_policy(args), seed=args.seed
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    # One engine pass; the runners generalise to N structures per pass.
    # result() is queried directly (not via finalize) so the failure
    # diagnostics reach the user.
    windowed_answer = None
    try:
        if args.workers > 1:
            # Workers read stream files themselves (no data IPC);
            # generated workloads stream through per-worker queues.
            source = (
                args.stream_file if args.stream_file is not None else stream
            )
            sharded = ShardedRunner(
                {"algorithm": algorithm},
                n_workers=args.workers,
                chunk_size=args.chunk_size,
                mmap=args.mmap,
                readahead=args.readahead,
            )
            # run() already finalizes the merged processors; keep the
            # windowed answer rather than re-merging bucket summaries.
            windowed_answer = sharded.run(source)["algorithm"]
            algorithm = sharded["algorithm"]
            print(f"sharded over {args.workers} workers "
                  f"(routing: {sharded.routing()!r})")
        else:
            runner = FanoutRunner({"algorithm": algorithm},
                                  chunk_size=args.chunk_size)
            runner.process(reader if args.mmap else stream)
    except (StreamFormatError, OSError) as error:
        # mmap readers defer range validation to chunk iteration, so a
        # corrupt file can surface here rather than at open time.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ShardedWorkerError as error:
        # A sharded worker reports its failure with structured cause
        # info; keep the friendly exit path for input problems (stream
        # format, I/O), propagate real bugs.
        if error.is_stream_error:
            print(f"error: cannot stream {args.stream_file}: "
                  f"{error.cause_type} in worker:\n{error}", file=sys.stderr)
            return 2
        raise
    if windowed:
        if windowed_answer is None:
            windowed_answer = algorithm.finalize()
        report_windowed(args.window_policy, windowed_answer)
        print(f"space: {algorithm.space_words()} words")
        return 0
    try:
        result = algorithm.result()
    except AlgorithmFailed as failure:
        print(f"algorithm reported fail: {failure}")
        return 1
    print(f"reported: {result}")
    if stream is not None:
        verify_neighbourhood(result, stream.to_edge_stream(), d, args.alpha)
        print(f"threshold d/alpha = {d / args.alpha:.1f}; verified against "
              f"ground truth: OK")
    else:
        print(f"threshold d/alpha = {d / args.alpha:.1f}; ground-truth "
              f"verification skipped (mmap mode never materialises the "
              f"stream)")
    print(f"space: {algorithm.space_words()} words")
    print(algorithm.space_breakdown())
    return 0


def _describe_window_value(value) -> str:
    """Human line for one window's finalized answer."""
    if value is None:
        return "no qualifying vertex"
    if hasattr(value, "vertex") and hasattr(value, "size"):
        return f"vertex {value.vertex} with {value.size} witnesses"
    return repr(value)


def report_windowed(policy_name: str, answer) -> None:
    """Print a window policy's end-of-stream answer."""
    if policy_name == "tumbling":
        print(f"{len(answer)} completed window(s):")
        for record in answer:
            print(f"  window {record.window_index} "
                  f"[{record.start_update}, {record.end_update}): "
                  f"{_describe_window_value(record.value)}")
        return
    if policy_name == "sliding":
        print(f"sliding window (smooth histogram, {answer.n_buckets} "
              f"bucket(s) of {answer.bucket}):")
        print(f"  covered updates [{answer.start_update}, "
              f"{answer.end_update}) — span {answer.span} for a "
              f"requested window of {answer.window}")
        print(f"  answer: {_describe_window_value(answer.value)}")
        return
    print(f"decay: {len(answer.recent)} recent bucket(s)"
          + (", plus decayed tail" if answer.has_tail else ", no tail yet"))
    for record in answer.recent:
        print(f"  bucket {record.window_index} "
              f"[{record.start_update}, {record.end_update}): "
              f"{_describe_window_value(record.value)}")
    if answer.has_tail:
        print(f"  tail [{answer.tail_start_update}, "
              f"{answer.tail_end_update}): "
              f"{_describe_window_value(answer.tail_value)}")


def command_persist(args: argparse.Namespace) -> int:
    try:
        if args.persist_command == "info":
            version = detect_version(args.file)
            stream = load_columnar(args.file)
            label = "v2.1" if stream.has_timestamps else f"v{version}"
            print(f"{args.file}: feww-stream {label} "
                  f"n={stream.n} m={stream.m}")
            print(f"  {stream.stats()}")
            if stream.has_timestamps:
                print(f"  timestamps: [{int(stream.t[0])}, "
                      f"{int(stream.t[-1])}]" if len(stream) else
                      "  timestamps: present (empty stream)")
            return 0
        if args.persist_command == "convert":
            stream = load_columnar(args.source)
            dump_stream(stream, args.destination, format=args.format)
            if stream.has_timestamps and not stream_has_timestamps(
                args.destination
            ):
                print("note: timestamps dropped (the v1 text format has "
                      "no timestamp column)")
            print(f"wrote {args.destination} "
                  f"(feww-stream v{detect_version(args.destination)}, "
                  f"{len(stream)} updates)")
            return 0
    except (StreamFormatError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled persist command {args.persist_command!r}")


def command_bounds(args: argparse.Namespace) -> int:
    n, m, d, alpha = args.n, args.m, args.d, args.alpha
    print(f"paper bounds for n={n}, m={m}, d={d}, alpha={alpha} (words):")
    print(f"  insertion-only upper  (Thm 3.2): "
          f"{insertion_only_space_words(n, d, alpha)}")
    if alpha >= 2:
        print(f"  insertion-only lower  (Thm 4.1+4.8): "
              f"{insertion_only_lower_bound_words(n, d, alpha):.0f}")
    print(f"  insertion-del. upper  (Thm 5.4): "
          f"{insertion_deletion_space_words(n, m, d, alpha)}")
    print(f"  insertion-del. lower  (Thm 6.4): "
          f"{insertion_deletion_lower_bound_words(n, d, alpha):.0f}")
    return 0


def command_figures(_: argparse.Namespace) -> int:
    from repro.comm.figures import render_figures

    print(render_figures())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return command_run(args)
    if args.command == "persist":
        return command_persist(args)
    if args.command == "bounds":
        return command_bounds(args)
    if args.command == "figures":
        return command_figures(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
