"""Extension: windowed FEwW (tumbling policy over Algorithm 2).

Monitoring applications care about *recent* frequency: "which
destination received d packets from distinct sources **this hour**,
and from whom?".  The tumbling-window variant partitions the stream
into fixed-size windows and answers FEwW independently per window by
restarting Algorithm 2 at each boundary, retaining the last completed
window's answer for queries that arrive mid-window.

Windowing itself now lives in the engine
(:mod:`repro.engine.windows`): :class:`TumblingWindowFEwW` is the
:class:`~repro.engine.windows.TumblingPolicy` composed with Algorithm 2
through the generic :class:`~repro.engine.windows.WindowedProcessor`,
and is bit-identical to the pre-refactor bespoke loop (equivalence-
tested in ``tests/integration/test_window_equivalence.py``).  Sliding
windows (smooth histograms) and count-based decay come from the same
subsystem — compose :class:`~repro.engine.windows.SlidingPolicy` or
:class:`~repro.engine.windows.DecayPolicy` with any processor factory,
e.g. :class:`Alg2WindowFactory`.

Space is twice Algorithm 2's (current instance + retained answer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.engine.windows import TumblingPolicy, WindowedProcessor
from repro.streams.edge import INSERT, StreamItem


@dataclass(frozen=True)
class WindowResult:
    """Answer for one completed window (``neighbourhood`` is None when
    the window held no vertex of degree >= d)."""

    window_index: int
    start_update: int
    end_update: int
    neighbourhood: Optional[Neighbourhood]

    @property
    def found(self) -> bool:
        return self.neighbourhood is not None


@dataclass(frozen=True)
class Alg2WindowFactory:
    """Picklable per-window Algorithm 2 factory for windowed wrappers.

    ``WindowedProcessor`` calls it with each window's derived seed; a
    plain dataclass (not a lambda) so sharded worker processes can
    pickle the wrapper.
    """

    n: int
    d: int
    alpha: int

    def __call__(self, seed: int) -> InsertionOnlyFEwW:
        return InsertionOnlyFEwW(self.n, self.d, self.alpha, seed=seed)


@dataclass(frozen=True)
class Alg3WindowFactory:
    """Picklable per-window Algorithm 3 factory (turnstile windows)."""

    n: int
    m: int
    d: int
    alpha: int
    scale: float = 1.0

    def __call__(self, seed: int) -> InsertionDeletionFEwW:
        return InsertionDeletionFEwW(
            self.n, self.m, self.d, self.alpha, seed=seed, scale=self.scale
        )


class TumblingWindowFEwW(WindowedProcessor):
    """FEwW answered independently on consecutive fixed-size windows.

    Args:
        n: number of A-vertices.
        d: per-window degree threshold.
        alpha: approximation factor.
        window: window length in stream updates.
        seed: master seed; each window's instance gets a derived seed
            (a function of the *global* window index, which is what lets
            sharded executions reproduce single-core window results
            bit for bit).
    """

    def __init__(self, n: int, d: int, alpha: int, window: int,
                 seed: int | None = None) -> None:
        self.n = n
        self.d = d
        self.alpha = alpha
        super().__init__(
            Alg2WindowFactory(n, d, alpha), TumblingPolicy(window), seed=seed
        )

    @property
    def window(self) -> int:
        return self.policy.window

    def _make_record(self, index, start, end, value) -> WindowResult:
        return WindowResult(
            window_index=index,
            start_update=start,
            end_update=end,
            neighbourhood=value,
        )

    # ------------------------------------------------------------------
    # Stream processing (insertion-only guard kept from the pre-engine
    # wrapper: the whole chunk is rejected before any state mutates).
    # ------------------------------------------------------------------

    def process_item(self, item: StreamItem) -> None:
        """Feed one update; closes the window at each boundary."""
        if item.is_delete:
            raise ValueError("tumbling-window FEwW is insertion-only")
        super().process_item(item)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        if sign is not None and np.any(sign != INSERT):
            raise ValueError("tumbling-window FEwW is insertion-only")
        super().process_batch(a, b, sign)

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def _check_merge_compatible(self, other) -> None:
        if not isinstance(other, TumblingWindowFEwW):
            raise ValueError(
                f"cannot merge TumblingWindowFEwW with {type(other).__name__}"
            )
        if (self.n, self.d, self.alpha, self.window, self._seed) != (
            other.n,
            other.d,
            other.alpha,
            other.window,
            other._seed,
        ):
            raise ValueError(
                "cannot merge tumbling-window wrappers with different "
                "parameters or seeds; split both from the same instance"
            )

    def _spawn(self) -> "TumblingWindowFEwW":
        return TumblingWindowFEwW(
            self.n, self.d, self.alpha, self.window, seed=self._seed
        )

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    def completed_windows(self) -> List[WindowResult]:
        """Results of all closed windows, oldest first."""
        return list(self._state)

    def latest(self) -> WindowResult:
        """The most recently completed window's answer.

        Raises:
            AlgorithmFailed: when no window has completed yet.
        """
        if not self._state:
            raise AlgorithmFailed("no window completed yet")
        return self._state[-1]

    def space_words(self) -> int:
        """Current instance plus the retained last answer."""
        retained = 0
        if self._state and self._state[-1].neighbourhood is not None:
            retained = 1 + 2 * self._state[-1].neighbourhood.size
        return self._current.space_words() + retained
