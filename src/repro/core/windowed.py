"""Extension: tumbling-window FEwW.

Monitoring applications care about *recent* frequency: "which
destination received d packets from distinct sources **this hour**,
and from whom?".  The tumbling-window variant partitions the stream
into fixed-size windows and answers FEwW independently per window by
restarting Algorithm 2 at each boundary, retaining the last completed
window's answer for queries that arrive mid-window.

This is the straightforward windowing the paper leaves implicit; space
is twice Algorithm 2's (current + retained answer).  A sliding-window
variant with overlap would need the smooth-histogram machinery and is
out of scope — documented here so users know the semantics they get.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.streams.edge import INSERT, StreamItem


@dataclass(frozen=True)
class WindowResult:
    """Answer for one completed window (``neighbourhood`` is None when
    the window held no vertex of degree >= d)."""

    window_index: int
    start_update: int
    end_update: int
    neighbourhood: Optional[Neighbourhood]

    @property
    def found(self) -> bool:
        return self.neighbourhood is not None


class TumblingWindowFEwW:
    """FEwW answered independently on consecutive fixed-size windows.

    Args:
        n: number of A-vertices.
        d: per-window degree threshold.
        alpha: approximation factor.
        window: window length in stream updates.
        seed: master seed; each window's instance gets a derived seed
            (a function of the *global* window index, which is what lets
            sharded executions reproduce single-core window results
            bit for bit).
    """

    def __init__(self, n: int, d: int, alpha: int, window: int,
                 seed: int | None = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.n = n
        self.d = d
        self.alpha = alpha
        self.window = window
        self._seed = seed if seed is not None else 0
        #: global index of the window currently being filled, and how
        #: far to jump when it closes (a shard produced by :meth:`split`
        #: owns windows ``offset, offset + stride, ...``).
        self._window_index = 0
        self._stride = 1
        self._updates_in_window = 0
        self._current = self._fresh_instance()
        self._completed: List[WindowResult] = []

    @property
    def shard_routing(self):
        """Updates must be routed by global stream position in blocks of
        ``window`` (see repro.engine.protocol)."""
        return ("window", self.window)

    def _fresh_instance(self) -> InsertionOnlyFEwW:
        derived = (self._seed * 1_000_003 + self._window_index) & 0xFFFFFFFF
        return InsertionOnlyFEwW(self.n, self.d, self.alpha, seed=derived)

    def _close_window(self) -> None:
        try:
            neighbourhood: Optional[Neighbourhood] = self._current.result()
        except AlgorithmFailed:
            neighbourhood = None
        start = self._window_index * self.window
        self._completed.append(
            WindowResult(
                window_index=self._window_index,
                start_update=start,
                end_update=start + self._updates_in_window,
                neighbourhood=neighbourhood,
            )
        )
        self._window_index += self._stride
        self._updates_in_window = 0
        self._current = self._fresh_instance()

    def process_item(self, item: StreamItem) -> None:
        """Feed one update; closes the window at each boundary."""
        if item.is_delete:
            raise ValueError("tumbling-window FEwW is insertion-only")
        self._current.process_item(item)
        self._updates_in_window += 1
        if self._updates_in_window == self.window:
            self._close_window()

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Engine entry point: split the chunk at window boundaries.

        Each maximal run of updates that falls inside one window is fed
        to the current Algorithm 2 instance as a single sub-batch, and
        windows are closed exactly where the per-item path would close
        them — so the sequence of (instance, updates) pairs, and with it
        every window's result, is bit-identical to item-at-a-time
        processing at any chunk size.  A shard produced by :meth:`split`
        must be fed exactly the updates of its own windows, in order
        (what a ShardedRunner's window routing does).
        """
        if sign is not None and np.any(sign != INSERT):
            raise ValueError("tumbling-window FEwW is insertion-only")
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        position, n_items = 0, len(a)
        while position < n_items:
            room = self.window - self._updates_in_window
            take = min(room, n_items - position)
            stop = position + take
            self._current.process_batch(a[position:stop], b[position:stop])
            self._updates_in_window += take
            position = stop
            if self._updates_in_window == self.window:
                self._close_window()

    def process(self, stream) -> "TumblingWindowFEwW":
        """Consume a whole stream through the engine's chunk path.

        Accepts anything :func:`repro.engine.as_chunks` does (columnar
        or boxed streams, persisted paths, chunk iterables).
        """
        from repro.engine import as_chunks

        for a, b, sign in as_chunks(stream):
            self.process_batch(a, b, sign)
        return self

    def flush(self) -> None:
        """Close the in-progress window early (end of stream).

        A no-op when the last window closed exactly at a boundary —
        except on a completely untouched instance, where (matching the
        pre-sharding semantics) it records one empty window.
        """
        if self._updates_in_window > 0 or (
            not self._completed and self._window_index == 0
        ):
            self._close_window()

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def merge(self, other: "TumblingWindowFEwW") -> "TumblingWindowFEwW":
        """Interleave the window results of two shards.

        Each operand's in-progress window (if it received updates) is
        flushed first; the merged instance then holds the union of all
        completed windows in global order.  Windows are seeded by global
        index and each is processed wholly by one shard, so the merged
        result list is bit-identical to a single-core run over the
        concatenated stream.
        """
        if not isinstance(other, TumblingWindowFEwW):
            raise ValueError(
                f"cannot merge TumblingWindowFEwW with {type(other).__name__}"
            )
        if (self.n, self.d, self.alpha, self.window, self._seed) != (
            other.n,
            other.d,
            other.alpha,
            other.window,
            other._seed,
        ):
            raise ValueError(
                "cannot merge tumbling-window wrappers with different "
                "parameters or seeds; split both from the same instance"
            )
        if self._updates_in_window > 0:
            self._close_window()
        if other._updates_in_window > 0:
            other._close_window()
        self._completed = sorted(
            self._completed + other._completed,
            key=lambda result: result.window_index,
        )
        return self

    def split(self, n_shards: int) -> List["TumblingWindowFEwW"]:
        """``n_shards`` shards, shard ``j`` owning windows ``j, j + n, ...``.

        Each shard derives the same per-window seeds a single-core run
        would, so window results are reproduced exactly no matter which
        shard computes them.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._updates_in_window or self._completed or self._window_index:
            raise RuntimeError("split() must be called before processing")
        shards = []
        for offset in range(n_shards):
            shard = TumblingWindowFEwW(
                self.n, self.d, self.alpha, self.window, seed=self._seed
            )
            shard._window_index = offset
            shard._stride = n_shards
            shard._current = shard._fresh_instance()
            shards.append(shard)
        return shards

    def finalize(self) -> List[WindowResult]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): flush the
        in-progress window and return all completed windows in order."""
        self.flush()
        return self.completed_windows()

    def completed_windows(self) -> List[WindowResult]:
        """Results of all closed windows, oldest first."""
        return list(self._completed)

    def latest(self) -> WindowResult:
        """The most recently completed window's answer.

        Raises:
            AlgorithmFailed: when no window has completed yet.
        """
        if not self._completed:
            raise AlgorithmFailed("no window completed yet")
        return self._completed[-1]

    def space_words(self) -> int:
        """Current instance plus the retained last answer."""
        retained = 0
        if self._completed and self._completed[-1].neighbourhood is not None:
            retained = 1 + 2 * self._completed[-1].neighbourhood.size
        return self._current.space_words() + retained
