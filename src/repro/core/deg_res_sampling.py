"""Algorithm 1: ``Deg-Res-Sampling(d1, d2, s)``.

Degree-based reservoir sampling.  While processing the stream of edges,
the degree of every A-vertex is maintained.  A reservoir of size ``s``
holds a uniform random sample of the vertices whose *current* degree is
at least ``d1``: the moment a vertex's degree reaches ``d1`` it becomes
a reservoir candidate (inserted with probability ``s / x`` where ``x``
counts candidates so far, evicting a uniform resident).  While a vertex
sits in the reservoir, its incident edges are collected until ``d2`` of
them are stored — so a vertex that stays sampled collects
``min(d2, deg - d1 + 1)`` witnesses.

The run *succeeds* if at least one stored neighbourhood reaches size
``d2`` (Lemma 3.1 lower-bounds that probability by
``1 - exp(-s * n2 / n1)``).

This class supports two usage modes:

* standalone — it maintains its own :class:`DegreeCounter`; feed it
  whole streams via :meth:`process` or items via :meth:`process_item`;
* subroutine of Algorithm 2 — the parent owns one shared degree counter
  and calls :meth:`observe_edge` with the post-increment degree, so the
  ``O(n log n)``-bit degree table is charged once, not α times
  (matching Theorem 3.2's accounting).
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Optional

import numpy as np

from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.sketch.exact import DegreeCounter
from repro.spacemeter import SpaceBreakdown, edge_words, vertex_words
from repro.streams.columnar import group_slices
from repro.streams.edge import INSERT, StreamItem
from repro.streams.stream import EdgeStream


class DegResSampling:
    """One run of the paper's Algorithm 1.

    Args:
        n: number of A-vertices.
        d1: degree threshold that makes a vertex a reservoir candidate.
        d2: number of witnesses to collect per sampled vertex; reaching
            ``d2`` for any vertex means success.
        s: reservoir size.
        rng: randomness for the reservoir coin flips.
        own_degrees: when True (standalone mode) the instance maintains
            its own degree counter and accepts :meth:`process` /
            :meth:`process_item`; when False the caller must drive
            :meth:`observe_edge`.
    """

    #: Degree counts and residency-window witness collection are exact
    #: only when each vertex's updates stay in one shard (see
    #: repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(
        self,
        n: int,
        d1: int,
        d2: int,
        s: int,
        rng: random.Random,
        own_degrees: bool = True,
    ) -> None:
        if d1 < 1:
            raise ValueError(f"d1 must be >= 1, got {d1}")
        if d2 < 1:
            raise ValueError(f"d2 must be >= 1, got {d2}")
        if s < 1:
            raise ValueError(f"reservoir size s must be >= 1, got {s}")
        self.n = n
        self.d1 = d1
        self.d2 = d2
        self.s = s
        self._rng = rng
        self._degrees: Optional[DegreeCounter] = DegreeCounter(n) if own_degrees else None
        #: reservoir contents: vertex -> collected witnesses, in arrival order
        self._reservoir: Dict[int, List[int]] = {}
        #: resident vertices in arbitrary order, for O(1) random eviction
        #: (mirrors the reservoir keys; not charged separately)
        self._resident: List[int] = []
        #: count of vertices whose degree has reached d1 so far (paper's x)
        self._candidates_seen = 0

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def _admit(self, a: int) -> None:
        self._reservoir[a] = []
        self._resident.append(a)

    def _cross(self, a: int) -> tuple:
        """Reservoir maintenance when ``a``'s degree reaches ``d1``.

        Returns ``(admitted, evicted)``; identical RNG consumption to the
        pre-batch implementation (one draw per full-reservoir candidate).
        """
        self._candidates_seen += 1
        if len(self._reservoir) < self.s:
            self._admit(a)
            return True, None
        if self._rng.random() < self.s / self._candidates_seen:
            # O(1) uniform eviction: pick a random slot in the resident
            # list and swap-remove it (one RNG draw, same as the former
            # O(s) choice over the reservoir keys).
            slot = self._rng.randrange(len(self._resident))
            evicted = self._resident[slot]
            last = self._resident.pop()
            if slot < len(self._resident):
                self._resident[slot] = last
            del self._reservoir[evicted]
            self._admit(a)
            return True, evicted
        return False, None

    def observe_edge(self, a: int, b: int, degree: int) -> None:
        """Process edge ``ab`` given vertex ``a``'s post-increment degree.

        This is the body of Algorithm 1's loop, lines 4-14: reservoir
        maintenance when ``degree == d1``, then witness collection when
        ``a`` is resident.
        """
        if degree == self.d1:
            self._cross(a)
        witnesses = self._reservoir.get(a)
        if witnesses is not None and len(witnesses) < self.d2:
            witnesses.append(b)

    def observe_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        degree_after: np.ndarray,
        grouping=None,
        crossings: Optional[np.ndarray] = None,
    ) -> None:
        """Batch counterpart of :meth:`observe_edge` for a run of insertions.

        ``degree_after[i]`` must be the post-increment degree of ``a[i]``
        (as produced by :meth:`DegreeCounter.increment_batch`);
        ``grouping`` optionally reuses a precomputed stable
        ``(order, starts, ends)`` grouping of ``a`` so Algorithm 2 can
        share one sort across its α runs.  ``crossings`` optionally
        passes the ascending positions where ``degree_after == d1``
        (Star Detection extracts every guess's crossings from one shared
        scan of the chunk instead of ``O(α log n)`` full rescans).

        The reservoir only changes at the rare positions where a vertex
        crosses ``d1``.  Those crossings replay the exact scalar logic in
        stream order (bit-identical RNG trajectory), while recording each
        vertex's *residency window* — admission position to eviction.
        Witness collection then runs once per end-resident vertex:
        its chunk occurrences (one shared grouping pass) are clipped to
        its window and the first ``d2 - len(stored)`` are appended.
        Appends to vertices evicted later in the chunk are skipped — the
        per-item path discards those lists at eviction anyway — so the
        final state is bit-identical to item-at-a-time processing.
        """
        n_items = len(a)
        if n_items == 0:
            return
        # Replay crossings in stream order, tracking residency windows.
        # window[v] = first position from which v may collect vectorized;
        # vertices resident before the chunk collect from position 0.
        if crossings is None:
            crossings = np.flatnonzero(degree_after == self.d1)
        windows: Dict[int, int] = {v: 0 for v in self._resident}
        if len(crossings):
            # Inlined :meth:`_cross` replay: same branch conditions in
            # the same order, so the RNG trajectory — and with it the
            # reservoir state — stays bit-identical to the per-item
            # path.  Hoisting the numpy indexing (one gather + tolist
            # instead of per-crossing scalar indexing) and the
            # attribute/method lookups makes the rare-but-hot crossing
            # loop several times cheaper; Star Detection replays this
            # loop for every rung of its guess ladder.
            reservoir, resident = self._reservoir, self._resident
            seen = self._candidates_seen
            s = self.s
            rng_random = self._rng.random
            rng_randrange = self._rng.randrange
            for position, vertex, witness in zip(
                crossings.tolist(),
                a[crossings].tolist(),
                b[crossings].tolist(),
            ):
                seen += 1
                if len(reservoir) < s:
                    pass
                elif rng_random() < s / seen:
                    slot = rng_randrange(len(resident))
                    evicted = resident[slot]
                    last = resident.pop()
                    if slot < len(resident):
                        resident[slot] = last
                    del reservoir[evicted]
                    windows.pop(evicted, None)
                else:
                    continue
                # Admitted: the crossing item itself is the vertex's
                # first chance to collect (d2 >= 1, fresh list =>
                # always appends).
                reservoir[vertex] = [witness]
                resident.append(vertex)
                windows[vertex] = position + 1
            self._candidates_seen = seen
        if not windows:
            return
        reservoir, d2 = self._reservoir, self.d2
        active = [
            (vertex, window_start)
            for vertex, window_start in windows.items()
            if len(reservoir[vertex]) < d2
        ]
        if not active:
            return
        if grouping is None:
            order, starts, ends = group_slices(a)
            group_vertices = a[order[starts]]
        else:
            order, starts, ends, group_vertices = grouping
        groups = np.searchsorted(
            group_vertices, np.fromiter((v for v, _ in active), dtype=np.int64)
        )
        n_groups = len(group_vertices)
        for (vertex, window_start), group in zip(active, groups.tolist()):
            if group == n_groups or int(group_vertices[group]) != vertex:
                continue  # vertex does not occur in this chunk
            positions = order[starts[group] : ends[group]]  # ascending
            if window_start > 0:
                lo = int(np.searchsorted(positions, window_start))
                if lo:
                    positions = positions[lo:]
            if len(positions):
                witnesses = reservoir[vertex]
                witnesses.extend(b[positions[: d2 - len(witnesses)]].tolist())

    def process_item(self, item: StreamItem) -> None:
        """Standalone-mode entry point for a single stream item."""
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "use observe_edge"
            )
        if item.is_delete:
            raise ValueError("Deg-Res-Sampling only supports insertion-only streams")
        degree = self._degrees.increment(item.edge.a)
        self.observe_edge(item.edge.a, item.edge.b, degree)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Standalone-mode entry point for a column chunk of insertions.

        Bit-identical to calling :meth:`process_item` on each update in
        order; ``sign``, when given, must be all-insert.
        """
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "use observe_batch"
            )
        if sign is not None and np.any(sign != INSERT):
            raise ValueError("Deg-Res-Sampling only supports insertion-only streams")
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        degree_after = self._degrees.increment_batch(a)
        self.observe_batch(a, b, degree_after)

    def process(self, stream: EdgeStream) -> "DegResSampling":
        """Consume an entire insertion-only stream; returns self."""
        for item in stream:
            self.process_item(item)
        return self

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def merge(self, other: "DegResSampling") -> "DegResSampling":
        """Combine two runs over vertex-disjoint sub-streams.

        Candidate counts add; the merged reservoir is the union of both
        shard reservoirs (vertex routing makes the keys disjoint — each
        vertex crossed ``d1`` in exactly one shard).  Witness lists of a
        vertex somehow present in both are deduplicated at merge time
        and clipped to ``d2``.  The union holds up to ``n_shards * s``
        vertices — the classical mergeable-summaries space tradeoff —
        and each shard's sample is a faithful Algorithm 1 run over its
        sub-stream, so Lemma 3.1's success bound applies per shard.
        """
        if not isinstance(other, DegResSampling):
            raise ValueError(
                f"cannot merge DegResSampling with {type(other).__name__}"
            )
        if (self.n, self.d1, self.d2, self.s) != (
            other.n,
            other.d1,
            other.d2,
            other.s,
        ):
            raise ValueError(
                f"cannot merge Deg-Res-Sampling(n={self.n}, d1={self.d1}, "
                f"d2={self.d2}, s={self.s}) with (n={other.n}, "
                f"d1={other.d1}, d2={other.d2}, s={other.s})"
            )
        if (self._degrees is None) != (other._degrees is None):
            raise ValueError(
                "cannot merge a standalone run (own_degrees=True) with an "
                "externally driven one"
            )
        if self._degrees is not None and other._degrees is not None:
            self._degrees.merge(other._degrees)
        self._candidates_seen += other._candidates_seen
        for vertex, witnesses in other._reservoir.items():
            stored = self._reservoir.get(vertex)
            if stored is None:
                self._reservoir[vertex] = list(witnesses)
                self._resident.append(vertex)
            else:
                seen = set(stored)
                stored.extend(
                    witness for witness in witnesses if witness not in seen
                )
                del stored[self.d2:]
        return self

    def split(self, n_shards: int) -> List["DegResSampling"]:
        """``n_shards`` empty same-parameter shard runs (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._candidates_seen or (
            self._degrees is not None and self._degrees.max_degree() > 0
        ):
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    @property
    def successful(self) -> bool:
        """True when some stored neighbourhood reached size ``d2``."""
        return any(len(witnesses) >= self.d2 for witnesses in self._reservoir.values())

    def candidates(self) -> List[Neighbourhood]:
        """All currently stored neighbourhoods (any size), for inspection."""
        return [
            Neighbourhood.of(vertex, witnesses)
            for vertex, witnesses in self._reservoir.items()
        ]

    def result(self) -> Neighbourhood:
        """An arbitrary stored neighbourhood of size ``d2`` (line 15).

        Raises:
            AlgorithmFailed: when no neighbourhood reached size ``d2``.
        """
        for vertex, witnesses in self._reservoir.items():
            if len(witnesses) >= self.d2:
                return Neighbourhood.of(vertex, witnesses)
        raise AlgorithmFailed(
            f"Deg-Res-Sampling(d1={self.d1}, d2={self.d2}, s={self.s}): "
            f"no neighbourhood of size {self.d2} collected"
        )

    def finalize(self) -> Optional[Neighbourhood]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the run's
        answer, or ``None`` instead of raising on failure."""
        try:
            return self.result()
        except AlgorithmFailed:
            return None

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Itemised space; excludes a shared degree counter (charged once
        by the parent when ``own_degrees=False``)."""
        breakdown = SpaceBreakdown()
        breakdown.add("reservoir ids", vertex_words(len(self._reservoir)))
        stored = sum(len(witnesses) for witnesses in self._reservoir.values())
        breakdown.add("collected edges", edge_words(stored))
        breakdown.add("candidate counter", 1)
        if self._degrees is not None:
            breakdown.add("degree counts", self._degrees.space_words())
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
