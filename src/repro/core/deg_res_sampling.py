"""Algorithm 1: ``Deg-Res-Sampling(d1, d2, s)``.

Degree-based reservoir sampling.  While processing the stream of edges,
the degree of every A-vertex is maintained.  A reservoir of size ``s``
holds a uniform random sample of the vertices whose *current* degree is
at least ``d1``: the moment a vertex's degree reaches ``d1`` it becomes
a reservoir candidate (inserted with probability ``s / x`` where ``x``
counts candidates so far, evicting a uniform resident).  While a vertex
sits in the reservoir, its incident edges are collected until ``d2`` of
them are stored — so a vertex that stays sampled collects
``min(d2, deg - d1 + 1)`` witnesses.

The run *succeeds* if at least one stored neighbourhood reaches size
``d2`` (Lemma 3.1 lower-bounds that probability by
``1 - exp(-s * n2 / n1)``).

This class supports two usage modes:

* standalone — it maintains its own :class:`DegreeCounter`; feed it
  whole streams via :meth:`process` or items via :meth:`process_item`;
* subroutine of Algorithm 2 — the parent owns one shared degree counter
  and calls :meth:`observe_edge` with the post-increment degree, so the
  ``O(n log n)``-bit degree table is charged once, not α times
  (matching Theorem 3.2's accounting).
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Optional

import numpy as np

from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.sketch.exact import DegreeCounter
from repro.spacemeter import SpaceBreakdown, edge_words, vertex_words
from repro.streams.columnar import group_slices
from repro.streams.edge import INSERT, StreamItem
from repro.streams.stream import EdgeStream


def collect_witnesses(requests, composite, order, b: np.ndarray) -> None:
    """One fused numpy pass serving many runs' witness collection.

    ``requests`` holds ``(run, active, needs, low_keys, high_keys)``
    tuples (see :meth:`DegResSampling._witness_requests`); ``composite``
    is the chunk's ascending group-major/position-minor key
    ``a[order] * n_items + order`` and ``order`` the stable argsort of
    ``a``.  The rank of ``low_keys[i]`` in ``composite`` is the absolute
    index of the vertex's first in-window occurrence and the rank of
    ``high_keys[i]`` is where its group ends, so two bulk searchsorteds
    cover window clipping, occurrence counting and absence
    (``low == high``) for every run at once.  Results are dispatched
    back per run in request order — bit-identical to each run running
    the pass alone, since the searches are independent and each run's
    slice of the gather lists its own in-window occurrences ascending.
    """
    all_lows: List[int] = []
    all_highs: List[int] = []
    all_needs: List[int] = []
    for _, active, needs, low_keys, high_keys in requests:
        all_lows += low_keys
        all_highs += high_keys
        all_needs += needs
    n_active = len(all_needs)
    packed = np.array(all_lows + all_highs + all_needs, dtype=np.int64)
    bounds = np.searchsorted(composite, packed[: 2 * n_active])
    lows = bounds[:n_active]
    counts = np.minimum(bounds[n_active:] - lows, packed[2 * n_active :])
    total = int(counts.sum())
    if total == 0:
        return
    # Ragged gather: flat indices of each vertex's first ``counts[i]``
    # in-window occurrences, concatenated in request order.
    resets = np.cumsum(counts) - counts
    offsets = np.repeat(lows - resets, counts) + np.arange(total, dtype=np.int64)
    collected = b[order[offsets]].tolist()
    counts_list = counts.tolist()
    cursor = 0
    position = 0
    for run, active, _, _, _ in requests:
        segment = counts_list[position : position + len(active)]
        cursor = run._store_witnesses(active, segment, collected, cursor)
        position += len(active)


class DegResSampling:
    """One run of the paper's Algorithm 1.

    Args:
        n: number of A-vertices.
        d1: degree threshold that makes a vertex a reservoir candidate.
        d2: number of witnesses to collect per sampled vertex; reaching
            ``d2`` for any vertex means success.
        s: reservoir size.
        rng: randomness for the reservoir coin flips.
        own_degrees: when True (standalone mode) the instance maintains
            its own degree counter and accepts :meth:`process` /
            :meth:`process_item`; when False the caller must drive
            :meth:`observe_edge`.
    """

    #: Degree counts and residency-window witness collection are exact
    #: only when each vertex's updates stay in one shard (see
    #: repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(
        self,
        n: int,
        d1: int,
        d2: int,
        s: int,
        rng: random.Random,
        own_degrees: bool = True,
    ) -> None:
        if d1 < 1:
            raise ValueError(f"d1 must be >= 1, got {d1}")
        if d2 < 1:
            raise ValueError(f"d2 must be >= 1, got {d2}")
        if s < 1:
            raise ValueError(f"reservoir size s must be >= 1, got {s}")
        self.n = n
        self.d1 = d1
        self.d2 = d2
        self.s = s
        self._rng = rng
        self._degrees: Optional[DegreeCounter] = DegreeCounter(n) if own_degrees else None
        #: reservoir contents: vertex -> collected witnesses, in arrival order
        self._reservoir: Dict[int, List[int]] = {}
        #: resident vertices in arbitrary order, for O(1) random eviction
        #: (mirrors the reservoir keys; not charged separately)
        self._resident: List[int] = []
        #: count of vertices whose degree has reached d1 so far (paper's x)
        self._candidates_seen = 0

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def _admit(self, a: int) -> None:
        self._reservoir[a] = []
        self._resident.append(a)

    def _cross(self, a: int) -> tuple:
        """Reservoir maintenance when ``a``'s degree reaches ``d1``.

        Returns ``(admitted, evicted)``; identical RNG consumption to the
        pre-batch implementation (one draw per full-reservoir candidate).
        """
        self._candidates_seen += 1
        if len(self._reservoir) < self.s:
            self._admit(a)
            return True, None
        if self._rng.random() < self.s / self._candidates_seen:
            # O(1) uniform eviction: pick a random slot in the resident
            # list and swap-remove it (one RNG draw, same as the former
            # O(s) choice over the reservoir keys).
            slot = self._rng.randrange(len(self._resident))
            evicted = self._resident[slot]
            last = self._resident.pop()
            if slot < len(self._resident):
                self._resident[slot] = last
            del self._reservoir[evicted]
            self._admit(a)
            return True, evicted
        return False, None

    def observe_edge(self, a: int, b: int, degree: int) -> None:
        """Process edge ``ab`` given vertex ``a``'s post-increment degree.

        This is the body of Algorithm 1's loop, lines 4-14: reservoir
        maintenance when ``degree == d1``, then witness collection when
        ``a`` is resident.
        """
        if degree == self.d1:
            self._cross(a)
        witnesses = self._reservoir.get(a)
        if witnesses is not None and len(witnesses) < self.d2:
            witnesses.append(b)

    def observe_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        degree_after: np.ndarray,
        grouping=None,
        crossings: Optional[np.ndarray] = None,
    ) -> None:
        """Batch counterpart of :meth:`observe_edge` for a run of insertions.

        ``degree_after[i]`` must be the post-increment degree of ``a[i]``
        (as produced by :meth:`DegreeCounter.increment_batch`);
        ``grouping`` optionally reuses a precomputed stable
        ``(order, starts, ends)`` grouping of ``a`` so Algorithm 2 can
        share one sort across its α runs.  ``crossings`` optionally
        passes the ascending positions where ``degree_after == d1``
        (Star Detection extracts every guess's crossings from one shared
        scan of the chunk instead of ``O(α log n)`` full rescans).

        The reservoir only changes at the rare positions where a vertex
        crosses ``d1``.  Those crossings replay the exact scalar logic in
        stream order (bit-identical RNG trajectory), while recording each
        vertex's *residency window* — admission position to eviction.
        Witness collection then runs once per end-resident vertex:
        its chunk occurrences (one shared grouping pass) are clipped to
        its window and the first ``d2 - len(stored)`` are appended.
        Appends to vertices evicted later in the chunk are skipped — the
        per-item path discards those lists at eviction anyway — so the
        final state is bit-identical to item-at-a-time processing.
        """
        n_items = len(a)
        if n_items == 0:
            return
        if crossings is None:
            crossings = np.flatnonzero(degree_after == self.d1)
        windows = self._replay_crossings(a, b, crossings)
        if not windows:
            return
        requests = self._witness_requests(windows, n_items)
        if not requests[0]:
            return
        composite = None
        if grouping is None:
            order, _, _ = group_slices(a)
        elif len(grouping) == 5:
            order, composite = grouping[0], grouping[4]
        else:
            order = grouping[0]
        if composite is None:
            composite = a[order] * np.int64(n_items) + order
        collect_witnesses([(self,) + requests], composite, order, b)

    def _replay_crossings(
        self, a: np.ndarray, b: np.ndarray, crossings: np.ndarray
    ) -> Dict[int, int]:
        """Replay reservoir maintenance for a chunk; return residency windows.

        ``windows[v]`` is the first chunk position from which resident
        vertex ``v`` may collect witnesses (0 for vertices resident
        before the chunk; admission position + 1 for vertices admitted
        inside it — the crossing item itself is stored at admission).
        """
        windows: Dict[int, int] = dict.fromkeys(self._resident, 0)
        if len(crossings):
            # Inlined :meth:`_cross` replay: same branch conditions and
            # the same RNG bit consumption, so the trajectory — and with
            # it the reservoir state — stays bit-identical to the
            # per-item path.  Hoisting the numpy indexing (one gather +
            # tolist instead of per-crossing scalar indexing) and the
            # attribute/method lookups makes the rare-but-hot crossing
            # loop several times cheaper; Star Detection replays this
            # loop for every rung of its guess ladder.
            reservoir, resident = self._reservoir, self._resident
            seen = self._candidates_seen
            s = self.s
            positions = crossings.tolist()
            cross_vertices = a[crossings].tolist()
            cross_witnesses = b[crossings].tolist()
            # Phase 1 — free admissions.  A vertex crosses ``d1`` at
            # most once ever (degrees are monotone), so the crossing
            # vertices are distinct and the first ``s - len(reservoir)``
            # of them admit unconditionally, consuming no randomness.
            take = 0
            room = s - len(reservoir)
            if room > 0:
                take = min(room, len(positions))
                for position, vertex, witness in zip(
                    positions[:take],
                    cross_vertices[:take],
                    cross_witnesses[:take],
                ):
                    reservoir[vertex] = [witness]
                    resident.append(vertex)
                    windows[vertex] = position + 1
                seen += take
            # Phase 2 — the reservoir is (and stays) full: one
            # ``random()`` per candidate, plus — on admission — the
            # exact ``getrandbits`` draws ``randrange(s)`` would make
            # (``_randbelow_with_getrandbits``, inlined: the reservoir
            # and resident list both hold exactly ``s`` entries here).
            if take < len(positions):
                rng_random = self._rng.random
                rng_getrandbits = self._rng.getrandbits
                slot_bits = s.bit_length()
                for position, vertex, witness in zip(
                    positions[take:],
                    cross_vertices[take:],
                    cross_witnesses[take:],
                ):
                    seen += 1
                    if rng_random() < s / seen:
                        while True:
                            slot = rng_getrandbits(slot_bits)
                            if slot < s:
                                break
                        evicted = resident[slot]
                        last = resident.pop()
                        if slot < len(resident):
                            resident[slot] = last
                        del reservoir[evicted]
                        windows.pop(evicted, None)
                        # Admitted: the crossing item itself is the
                        # vertex's first chance to collect (d2 >= 1,
                        # fresh list => always appends).
                        reservoir[vertex] = [witness]
                        resident.append(vertex)
                        windows[vertex] = position + 1
            self._candidates_seen = seen
        return windows

    def _witness_requests(self, windows: Dict[int, int], n_items: int):
        """Collection requests for one chunk as flat Python lists.

        Returns ``(active, needs, low_keys, high_keys)``: the resident
        vertices still short of ``d2`` witnesses, how many each may take,
        and their composite-key search targets (see
        :func:`collect_witnesses`).  Building the integer keys here keeps
        the numpy side to two bulk calls regardless of how many runs
        share the pass.
        """
        reservoir, d2 = self._reservoir, self.d2
        active: List[int] = []
        needs: List[int] = []
        low_keys: List[int] = []
        high_keys: List[int] = []
        for vertex, window_start in windows.items():
            remaining = d2 - len(reservoir[vertex])
            if remaining > 0:
                active.append(vertex)
                needs.append(remaining)
                low_keys.append(vertex * n_items + window_start)
                high_keys.append((vertex + 1) * n_items)
        return active, needs, low_keys, high_keys

    def _store_witnesses(self, active, counts, collected, cursor: int) -> int:
        """Append each active vertex's slice of the shared gather."""
        reservoir = self._reservoir
        for vertex, count in zip(active, counts):
            if count:
                reservoir[vertex].extend(collected[cursor : cursor + count])
                cursor += count
        return cursor

    def process_item(self, item: StreamItem) -> None:
        """Standalone-mode entry point for a single stream item."""
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "use observe_edge"
            )
        if item.is_delete:
            raise ValueError("Deg-Res-Sampling only supports insertion-only streams")
        degree = self._degrees.increment(item.edge.a)
        self.observe_edge(item.edge.a, item.edge.b, degree)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Standalone-mode entry point for a column chunk of insertions.

        Bit-identical to calling :meth:`process_item` on each update in
        order; ``sign``, when given, must be all-insert.
        """
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "use observe_batch"
            )
        if sign is not None and np.any(sign != INSERT):
            raise ValueError("Deg-Res-Sampling only supports insertion-only streams")
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        degree_after = self._degrees.increment_batch(a)
        self.observe_batch(a, b, degree_after)

    def process(self, stream: EdgeStream) -> "DegResSampling":
        """Consume an entire insertion-only stream; returns self."""
        for item in stream:
            self.process_item(item)
        return self

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def clone(self) -> "DegResSampling":
        """An independent duplicate of the run's full state.

        Equivalent to ``copy.deepcopy`` — the RNG state is carried over,
        so clone and original draw identical trajectories — but built
        with direct container copies instead of the generic graph walk.
        Window policies clone bucket summaries on every suffix fold and
        mid-stream probe, so this is query-hot.
        """
        dup = object.__new__(DegResSampling)
        dup.n, dup.d1, dup.d2, dup.s = self.n, self.d1, self.d2, self.s
        rng = random.Random.__new__(random.Random)
        rng.setstate(self._rng.getstate())
        dup._rng = rng
        dup._degrees = None if self._degrees is None else self._degrees.clone()
        dup._reservoir = {
            vertex: list(witnesses)
            for vertex, witnesses in self._reservoir.items()
        }
        dup._resident = list(self._resident)
        dup._candidates_seen = self._candidates_seen
        return dup

    def merge(self, other: "DegResSampling") -> "DegResSampling":
        """Combine two runs over vertex-disjoint sub-streams.

        Candidate counts add; the merged reservoir is the union of both
        shard reservoirs (vertex routing makes the keys disjoint — each
        vertex crossed ``d1`` in exactly one shard).  Witness lists of a
        vertex somehow present in both are deduplicated at merge time
        and clipped to ``d2``.  The union holds up to ``n_shards * s``
        vertices — the classical mergeable-summaries space tradeoff —
        and each shard's sample is a faithful Algorithm 1 run over its
        sub-stream, so Lemma 3.1's success bound applies per shard.
        """
        if not isinstance(other, DegResSampling):
            raise ValueError(
                f"cannot merge DegResSampling with {type(other).__name__}"
            )
        if (self.n, self.d1, self.d2, self.s) != (
            other.n,
            other.d1,
            other.d2,
            other.s,
        ):
            raise ValueError(
                f"cannot merge Deg-Res-Sampling(n={self.n}, d1={self.d1}, "
                f"d2={self.d2}, s={self.s}) with (n={other.n}, "
                f"d1={other.d1}, d2={other.d2}, s={other.s})"
            )
        if (self._degrees is None) != (other._degrees is None):
            raise ValueError(
                "cannot merge a standalone run (own_degrees=True) with an "
                "externally driven one"
            )
        if self._degrees is not None and other._degrees is not None:
            self._degrees.merge(other._degrees)
        self._candidates_seen += other._candidates_seen
        for vertex, witnesses in other._reservoir.items():
            stored = self._reservoir.get(vertex)
            if stored is None:
                self._reservoir[vertex] = list(witnesses)
                self._resident.append(vertex)
            else:
                seen = set(stored)
                stored.extend(
                    witness for witness in witnesses if witness not in seen
                )
                del stored[self.d2:]
        return self

    def split(self, n_shards: int) -> List["DegResSampling"]:
        """``n_shards`` empty same-parameter shard runs (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._candidates_seen or (
            self._degrees is not None and self._degrees.max_degree() > 0
        ):
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    @property
    def successful(self) -> bool:
        """True when some stored neighbourhood reached size ``d2``."""
        return any(len(witnesses) >= self.d2 for witnesses in self._reservoir.values())

    def candidates(self) -> List[Neighbourhood]:
        """All currently stored neighbourhoods (any size), for inspection."""
        return [
            Neighbourhood.of(vertex, witnesses)
            for vertex, witnesses in self._reservoir.items()
        ]

    def result(self) -> Neighbourhood:
        """An arbitrary stored neighbourhood of size ``d2`` (line 15).

        Raises:
            AlgorithmFailed: when no neighbourhood reached size ``d2``.
        """
        for vertex, witnesses in self._reservoir.items():
            if len(witnesses) >= self.d2:
                return Neighbourhood.of(vertex, witnesses)
        raise AlgorithmFailed(
            f"Deg-Res-Sampling(d1={self.d1}, d2={self.d2}, s={self.s}): "
            f"no neighbourhood of size {self.d2} collected"
        )

    def finalize(self) -> Optional[Neighbourhood]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the run's
        answer, or ``None`` instead of raising on failure."""
        try:
            return self.result()
        except AlgorithmFailed:
            return None

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Itemised space; excludes a shared degree counter (charged once
        by the parent when ``own_degrees=False``)."""
        breakdown = SpaceBreakdown()
        breakdown.add("reservoir ids", vertex_words(len(self._reservoir)))
        stored = sum(len(witnesses) for witnesses in self._reservoir.values())
        breakdown.add("collected edges", edge_words(stored))
        breakdown.add("candidate counter", 1)
        if self._degrees is not None:
            breakdown.add("degree counts", self._degrees.space_words())
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
