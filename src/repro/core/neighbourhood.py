"""Output type of FEwW algorithms: a vertex plus a witness set.

A *neighbourhood* ``(a, S)`` (paper §2) is an A-vertex together with a
subset of its B-side neighbours; its size is ``|S|``.  The objective of
``FEwW(n, d)`` with approximation factor α is to output a neighbourhood
of size at least ``d / α``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.streams.stream import EdgeStream


class AlgorithmFailed(RuntimeError):
    """Raised by ``result()`` when an algorithm reports *fail*.

    The paper's algorithms are allowed to fail with small probability
    (at most ``1/n`` for Algorithm 2); callers distinguish that outcome
    from a wrong answer, which would be a bug.
    """


@dataclass(frozen=True)
class Neighbourhood:
    """A vertex together with a set of witnesses for its degree.

    Attributes:
        vertex: the reported A-vertex.
        witnesses: B-side neighbours certifying the vertex's degree.
    """

    vertex: int
    witnesses: FrozenSet[int] = field(default_factory=frozenset)

    @staticmethod
    def of(vertex: int, witnesses: Iterable[int]) -> "Neighbourhood":
        """Convenience constructor accepting any witness iterable."""
        return Neighbourhood(vertex, frozenset(witnesses))

    @property
    def size(self) -> int:
        """Neighbourhood size ``|S|`` (paper §2)."""
        return len(self.witnesses)

    def meets_threshold(self, d: int, alpha: float) -> bool:
        """True when the neighbourhood has size at least ``d / alpha``."""
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        return self.size >= d / alpha

    def __str__(self) -> str:
        preview = sorted(self.witnesses)[:8]
        suffix = ", ..." if self.size > 8 else ""
        return f"Neighbourhood(a={self.vertex}, |S|={self.size}, S={preview}{suffix})"


def verify_neighbourhood(
    neighbourhood: Neighbourhood,
    stream: EdgeStream,
    d: int,
    alpha: float,
) -> None:
    """Check a reported neighbourhood against the stream's final graph.

    Verifies the two soundness conditions every FEwW output must meet:
    all witnesses are genuine final-graph neighbours of the vertex, and
    the witness count reaches ``d / alpha``.

    Raises:
        AssertionError: describing the violated condition.
    """
    actual = stream.neighbours_of(neighbourhood.vertex)
    fake = neighbourhood.witnesses - actual
    if fake:
        raise AssertionError(
            f"vertex {neighbourhood.vertex} reported {len(fake)} non-neighbours: "
            f"{sorted(fake)[:5]}"
        )
    if not neighbourhood.meets_threshold(d, alpha):
        raise AssertionError(
            f"neighbourhood size {neighbourhood.size} below threshold "
            f"d/alpha = {d}/{alpha} = {d / alpha:.2f}"
        )
