"""The paper's primary contribution: streaming algorithms for FEwW.

* :class:`DegResSampling` — Algorithm 1, degree-based reservoir sampling
  (``Deg-Res-Sampling(d1, d2, s)``);
* :class:`InsertionOnlyFEwW` — Algorithm 2, the α-approximation for
  insertion-only streams (Theorem 3.2);
* :class:`InsertionDeletionFEwW` — Algorithm 3, the α-approximation for
  insertion-deletion streams built on ℓ₀-samplers (Theorem 5.4);
* :class:`StarDetection` — the Lemma 3.3 wrapper solving Star Detection
  with ``O(log_{1+ε} n)`` parallel guesses of Δ (Corollaries 3.4 / 5.5);
* :class:`Neighbourhood` — the output type: an A-vertex plus witnesses.

All algorithms share the same lifecycle: construct with parameters,
``process(stream)`` (or feed items one at a time via ``process_item``),
then ``result()`` which returns a :class:`Neighbourhood` or raises
:class:`AlgorithmFailed`.
"""

from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood, verify_neighbourhood
from repro.core.deg_res_sampling import DegResSampling
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.insertion_deletion import InsertionDeletionFEwW, SamplingStrategy
from repro.core.star_detection import StarDetection, StarDetectionResult
from repro.core.topk import TopKFEwW
from repro.core.windowed import (
    Alg2WindowFactory,
    Alg3WindowFactory,
    TumblingWindowFEwW,
    WindowResult,
)

__all__ = [
    "Alg2WindowFactory",
    "Alg3WindowFactory",
    "TumblingWindowFEwW",
    "WindowResult",
    "AlgorithmFailed",
    "DegResSampling",
    "InsertionDeletionFEwW",
    "InsertionOnlyFEwW",
    "Neighbourhood",
    "SamplingStrategy",
    "StarDetection",
    "StarDetectionResult",
    "TopKFEwW",
    "verify_neighbourhood",
]
