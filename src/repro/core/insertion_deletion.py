"""Algorithm 3: the α-approximation for insertion-deletion streams.

The algorithm combines two sampling strategies, both built on
ℓ₀-samplers (Section 5):

* **vertex sampling** — before the stream, sample a uniform subset
  ``A'`` of ``10 x ln n`` A-vertices (``x = max(n/α, √n)``); for each
  sampled vertex run ``10 (d/α) ln n`` ℓ₀-samplers on its incident-edge
  vector.  Succeeds when the graph has at least ``n/x`` vertices of
  degree ``>= d/α`` (Lemma 5.2).
* **edge sampling** — run ``10 (nd/α)(1/x + 1/α) ln(nm)`` ℓ₀-samplers
  on the full edge vector.  Succeeds when the graph has at most ``n/x``
  such vertices, so the maximum-degree vertex owns a large fraction of
  all edges (Lemma 5.3).

Output: any vertex for which the stored sampled edges contain at least
``d/α`` distinct witnesses; otherwise *fail*.  Theorem 5.4: space
``Õ(dn/α²)`` for ``α <= √n`` and ``Õ(√n d/α)`` otherwise, success
w.h.p.

ℓ₀-samplers run with ``δ = 1/(n^10 d)`` as in the paper.  The
``scale`` parameter multiplies the paper's constant 10 (useful to keep
pure-Python benchmark runs fast while preserving the formulas' shape);
``sampler_mode`` selects real sketches (``"exact"``) or the
distributionally equivalent accelerated bank (``"fast"``, default — see
:mod:`repro.sketch.l0`).
"""

from __future__ import annotations

import copy
import math
import random
from enum import Enum
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.sketch.l0 import L0SamplerBank
from repro.spacemeter import SpaceBreakdown, vertex_words
from repro.streams.edge import Edge, StreamItem, insert_signs
from repro.streams.stream import EdgeStream


class SamplingStrategy(Enum):
    """Which of Algorithm 3's strategies to run (BOTH is the paper's)."""

    VERTEX = "vertex"
    EDGE = "edge"
    BOTH = "both"


def x_parameter(n: int, alpha: float) -> float:
    """The split point ``x = max(n/α, √n)`` from Algorithm 3, step 1."""
    return max(n / alpha, math.sqrt(n))


def vertex_sample_size(n: int, alpha: float, scale: float = 1.0) -> int:
    """``|A'| = 10 x ln n`` (capped at n)."""
    if n < 2:
        return n
    return min(n, math.ceil(scale * 10 * x_parameter(n, alpha) * math.log(n)))


def samplers_per_vertex(n: int, d: int, alpha: float, scale: float = 1.0) -> int:
    """``10 (d/α) ln n`` ℓ₀-samplers per sampled vertex."""
    base = scale * 10 * (d / alpha) * math.log(max(n, 2))
    return max(1, math.ceil(base))


def edge_sampler_count(n: int, m: int, d: int, alpha: float, scale: float = 1.0) -> int:
    """``10 (nd/α)(1/x + 1/α) ln(nm)`` ℓ₀-samplers on the edge vector."""
    x = x_parameter(n, alpha)
    base = scale * 10 * (n * d / alpha) * (1.0 / x + 1.0 / alpha) * math.log(max(n * m, 2))
    return max(1, math.ceil(base))


class InsertionDeletionFEwW:
    """The paper's Algorithm 3.

    Args:
        n: number of A-vertices.
        m: number of B-vertices.
        d: degree threshold of the FEwW promise.
        alpha: approximation factor (any value >= 1; need not be integral).
        seed: RNG seed for vertex sampling and all ℓ₀-samplers.
        strategy: run vertex sampling, edge sampling, or both (paper).
        scale: multiplier on the paper's constant 10 in all sampler
            counts (1.0 reproduces the paper exactly).
        sampler_mode: ``"fast"`` or ``"exact"`` ℓ₀-sampler banks.
    """

    #: Every sampler bank is a linear sketch of its update vector, so
    #: same-seed shards merge bit-identically for any stream split (see
    #: repro.engine.protocol).
    shard_routing = "any"

    def __init__(
        self,
        n: int,
        m: int,
        d: int,
        alpha: float,
        seed: int | None = None,
        strategy: SamplingStrategy = SamplingStrategy.BOTH,
        scale: float = 1.0,
        sampler_mode: str = "fast",
    ) -> None:
        if alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.n = n
        self.m = m
        self.d = d
        self.alpha = alpha
        self.strategy = strategy
        self.scale = scale
        self.threshold = math.ceil(d / alpha)
        self.delta = 1.0 / (max(n, 2) ** 10 * d)
        rng = random.Random(seed)

        self._vertex_banks: Dict[int, L0SamplerBank] = {}
        self._bank_flags = np.zeros(n, dtype=bool)
        if strategy in (SamplingStrategy.VERTEX, SamplingStrategy.BOTH):
            sample_size = vertex_sample_size(n, alpha, scale)
            sampled = rng.sample(range(n), sample_size)
            per_vertex = samplers_per_vertex(n, d, alpha, scale)
            for a in sampled:
                self._vertex_banks[a] = L0SamplerBank(
                    m, per_vertex, self.delta, rng, mode=sampler_mode
                )
                self._bank_flags[a] = True

        self._edge_bank: Optional[L0SamplerBank] = None
        if strategy in (SamplingStrategy.EDGE, SamplingStrategy.BOTH):
            count = edge_sampler_count(n, m, d, alpha, scale)
            self._edge_bank = L0SamplerBank(
                n * m, count, self.delta, rng, mode=sampler_mode
            )

        self._result_cache: Optional[Dict[int, Set[int]]] = None
        self._updates_seen = 0

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def process_item(self, item: StreamItem) -> None:
        """Route one signed update into both sampling structures."""
        self._result_cache = None
        self._updates_seen += 1
        edge = item.edge
        if edge.a >= self.n or edge.b >= self.m:
            raise ValueError(f"edge {edge} out of range for ({self.n}, {self.m})")
        bank = self._vertex_banks.get(edge.a)
        if bank is not None:
            bank.update(edge.b, item.sign)
        if self._edge_bank is not None:
            self._edge_bank.update(edge.flat_index(self.m), item.sign)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Route a column chunk of signed updates into both structures.

        The whole chunk is netted once on the flattened edge coordinate
        ``a * m + b``: one ``np.unique`` + scatter-add yields the net
        sign per (vertex, witness) pair, shared by *both* sampling
        structures.  The edge bank takes the netted column directly, and
        because flat coordinates sort by vertex first, each sampled
        vertex's bank takes a contiguous pre-netted slice — no per-group
        re-sorting or re-netting.  All sketches involved are linear, so
        the final state is identical to item-by-item processing.
        """
        self._result_cache = None
        self._updates_seen += len(a)
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if sign is None:
            sign = insert_signs(len(a))
        else:
            sign = np.ascontiguousarray(sign, dtype=np.int64)
        if len(a) == 0:
            return
        if (
            int(a.min()) < 0
            or int(a.max()) >= self.n
            or int(b.min()) < 0
            or int(b.max()) >= self.m
        ):
            bad = np.flatnonzero((a < 0) | (a >= self.n) | (b < 0) | (b >= self.m))[0]
            edge = Edge(int(a[bad]), int(b[bad]))
            raise ValueError(f"edge {edge} out of range for ({self.n}, {self.m})")
        flat = a * self.m + b
        unique, inverse = np.unique(flat, return_inverse=True)
        net = np.zeros(len(unique), dtype=np.int64)
        np.add.at(net, inverse, sign)
        live = net != 0
        if not live.any():
            return
        self._apply_netted(unique[live], net[live])

    def process_netted(
        self, unique: np.ndarray, net: np.ndarray, n_updates: int
    ) -> None:
        """Feed a pre-netted chunk of flat-coordinate updates.

        ``unique`` must be the sorted distinct flat edge coordinates
        ``a * m + b`` of an already range-checked chunk of ``n_updates``
        signed updates, and ``net`` their nonzero net signs — exactly
        what :meth:`process_batch` computes internally.  Star Detection
        calls this so the ``np.unique`` netting pass (and the range
        validation) runs once per chunk instead of once per degree
        guess; every sketch is linear, so the state is identical to
        handing the raw chunk to :meth:`process_batch`.
        """
        self._result_cache = None
        self._updates_seen += n_updates
        if len(unique) == 0:
            return
        self._apply_netted(unique, net)

    def _apply_netted(self, unique: np.ndarray, net: np.ndarray) -> None:
        """Scatter netted flat-coordinate updates into both structures."""
        if self._vertex_banks:
            vertices = unique // self.m
            mask = self._bank_flags[vertices]
            if mask.any():
                selected = np.flatnonzero(mask)
                sampled_vertices = vertices[selected]
                sampled_b = unique[selected] - sampled_vertices * self.m
                sampled_net = net[selected]
                cuts = np.flatnonzero(sampled_vertices[1:] != sampled_vertices[:-1]) + 1
                starts = np.concatenate(([0], cuts))
                ends = np.concatenate((cuts, [len(sampled_vertices)]))
                for group_start, group_end in zip(starts.tolist(), ends.tolist()):
                    bank = self._vertex_banks[int(sampled_vertices[group_start])]
                    bank.update_batch(
                        sampled_b[group_start:group_end],
                        sampled_net[group_start:group_end],
                        netted=True,
                    )
        if self._edge_bank is not None:
            self._edge_bank.update_batch(unique, net, netted=True)

    def process(self, stream: EdgeStream) -> "InsertionDeletionFEwW":
        """Consume an entire (possibly turnstile) stream; returns self."""
        for item in stream:
            self.process_item(item)
        return self

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def merge(self, other: "InsertionDeletionFEwW") -> "InsertionDeletionFEwW":
        """Combine two Algorithm 3 states over disjoint sub-streams.

        Both operands must be split from the same seeded instance (same
        sampled vertex set ``A'``, same sampler seeds).  All sampler
        banks are linear, so the merged state — and with it every
        query-time sample — is bit-identical to a single pass over the
        concatenated stream; cross-shard insert/delete cancellations
        resolve at merge time.
        """
        if not isinstance(other, InsertionDeletionFEwW):
            raise ValueError(
                f"cannot merge InsertionDeletionFEwW with "
                f"{type(other).__name__}"
            )
        if (self.n, self.m, self.d, self.alpha, self.strategy) != (
            other.n,
            other.m,
            other.d,
            other.alpha,
            other.strategy,
        ):
            raise ValueError(
                f"cannot merge Algorithm 3 (n={self.n}, m={self.m}, "
                f"d={self.d}, alpha={self.alpha}, "
                f"strategy={self.strategy.value}) with (n={other.n}, "
                f"m={other.m}, d={other.d}, alpha={other.alpha}, "
                f"strategy={other.strategy.value})"
            )
        if set(self._vertex_banks) != set(other._vertex_banks):
            raise ValueError(
                "cannot merge Algorithm 3 states with different sampled "
                "vertex sets; split both from the same seeded instance"
            )
        for vertex, bank in self._vertex_banks.items():
            bank.merge(other._vertex_banks[vertex])
        if (self._edge_bank is None) != (other._edge_bank is None):
            raise ValueError(
                "cannot merge Algorithm 3 states with mismatched edge banks"
            )
        if self._edge_bank is not None and other._edge_bank is not None:
            self._edge_bank.merge(other._edge_bank)
        self._result_cache = None
        self._updates_seen += other._updates_seen
        return self

    def split(self, n_shards: int) -> List["InsertionDeletionFEwW"]:
        """``n_shards`` empty same-seed shard instances (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._updates_seen:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    def _collected(self) -> Dict[int, Set[int]]:
        """Query every sampler once and group stored edges by A-vertex.

        Sampler queries are randomised, so the outcome is computed once
        and memoised: repeated calls to :meth:`result` agree.
        """
        if self._result_cache is not None:
            return self._result_cache
        collected: Dict[int, Set[int]] = {}
        for a, bank in self._vertex_banks.items():
            witnesses = {b for b in bank.sample_all() if b is not None}
            if witnesses:
                collected.setdefault(a, set()).update(witnesses)
        if self._edge_bank is not None:
            for flat in self._edge_bank.sample_all():
                if flat is None:
                    continue
                edge = Edge.from_flat_index(flat, self.m)
                collected.setdefault(edge.a, set()).add(edge.b)
        self._result_cache = collected
        return collected

    @property
    def successful(self) -> bool:
        """True when some vertex accumulated >= ceil(d/α) witnesses."""
        return any(
            len(witnesses) >= self.threshold
            for witnesses in self._collected().values()
        )

    def result(self) -> Neighbourhood:
        """Any stored neighbourhood of size >= ceil(d/α) (step 4).

        Raises:
            AlgorithmFailed: when no vertex reached the threshold.
        """
        best_vertex, best_witnesses = None, set()
        for vertex, witnesses in self._collected().items():
            if len(witnesses) >= self.threshold and len(witnesses) > len(best_witnesses):
                best_vertex, best_witnesses = vertex, witnesses
        if best_vertex is None:
            raise AlgorithmFailed(
                f"Algorithm 3 failed (n={self.n}, d={self.d}, alpha={self.alpha}, "
                f"strategy={self.strategy.value})"
            )
        return Neighbourhood.of(best_vertex, best_witnesses)

    def finalize(self) -> Optional[Neighbourhood]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        algorithm's answer, or ``None`` instead of raising on failure."""
        try:
            return self.result()
        except AlgorithmFailed:
            return None

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Sampled vertex ids plus every ℓ₀-sampler bank."""
        breakdown = SpaceBreakdown()
        if self._vertex_banks:
            breakdown.add("sampled vertex ids", vertex_words(len(self._vertex_banks)))
            breakdown.add(
                "vertex-sampling l0 banks",
                sum(bank.space_words() for bank in self._vertex_banks.values()),
            )
        if self._edge_bank is not None:
            breakdown.add("edge-sampling l0 bank", self._edge_bank.space_words())
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
