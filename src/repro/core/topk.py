"""Extension: top-k frequent elements with witnesses.

The paper outputs a *single* neighbourhood.  Applications often want
several: the k most-updated database rows with their users, the k
DoS victims with their sources.  This extension reuses Algorithm 2's
machinery with the reservoir scaled by ``k`` (so each of up to ``k``
heavy vertices is retained with the same per-vertex probability the
single-output analysis gives), then reports every stored neighbourhood
that reaches the ``d/α`` threshold, largest first.

Guarantee inherited from Theorem 3.2: any vertex of degree ≥ d is
reported with probability ≥ 1 − 1/n individually; the union over k
planted heavy vertices holds with probability ≥ 1 − k/n.  This is an
extension of the paper's results, not a claim made in it — benchmark
E14 measures it.
"""

from __future__ import annotations

import copy
import math
from typing import List, Optional

import numpy as np

from repro.core.insertion_only import InsertionOnlyFEwW, reservoir_size
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.spacemeter import SpaceBreakdown
from repro.streams.edge import StreamItem


class TopKFEwW:
    """Report up to ``k`` vertices of degree ≥ d, each with witnesses.

    Args:
        n: number of A-vertices.
        d: degree threshold.
        alpha: approximation factor (each output has ≥ ceil(d/α) witnesses).
        k: maximum number of neighbourhoods to report.
        seed: RNG seed.
    """

    #: Thin wrapper over Algorithm 2, which shards by vertex hash (see
    #: repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(self, n: int, d: int, alpha: int, k: int,
                 seed: int | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._inner = InsertionOnlyFEwW(
            n, d, alpha, seed=seed,
            reservoir_override=k * reservoir_size(n, alpha),
        )
        self.threshold = math.ceil(d / alpha)

    @property
    def n(self) -> int:
        return self._inner.n

    @property
    def d(self) -> int:
        return self._inner.d

    @property
    def alpha(self) -> int:
        return self._inner.alpha

    def process_item(self, item: StreamItem) -> None:
        """Reference per-item path (bit-identical to the batch path)."""
        self._inner.process_item(item)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Engine entry point: one column chunk into the scaled reservoir."""
        self._inner.process_batch(a, b, sign)

    def process(self, stream) -> "TopKFEwW":
        """Consume a whole stream through the engine's chunk path.

        Accepts anything :func:`repro.engine.as_chunks` does (columnar
        or boxed streams, persisted paths, chunk iterables).
        """
        from repro.engine import as_chunks

        for a, b, sign in as_chunks(stream):
            self.process_batch(a, b, sign)
        return self

    def merge(self, other: "TopKFEwW") -> "TopKFEwW":
        """Merge the scaled inner Algorithm 2 states (vertex routing).

        :meth:`results` already deduplicates candidate neighbourhoods by
        vertex, so the union of shard reservoirs ranks exactly like a
        single-core reservoir holding the same candidates.
        """
        if not isinstance(other, TopKFEwW):
            raise ValueError(
                f"cannot merge TopKFEwW with {type(other).__name__}"
            )
        if self.k != other.k:
            raise ValueError(f"cannot merge k={self.k} with k={other.k}")
        self._inner.merge(other._inner)
        return self

    def split(self, n_shards: int) -> List["TopKFEwW"]:
        """``n_shards`` empty same-seed shard wrappers (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._inner._degrees.max_degree() > 0:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def results(self) -> List[Neighbourhood]:
        """Up to ``k`` distinct-vertex neighbourhoods of size ≥ ceil(d/α),
        largest first.

        Raises:
            AlgorithmFailed: when no stored neighbourhood reaches the
            threshold.
        """
        by_vertex: dict[int, Neighbourhood] = {}
        for run in self._inner.runs:
            for candidate in run.candidates():
                if candidate.size < self.threshold:
                    continue
                current = by_vertex.get(candidate.vertex)
                if current is None or candidate.size > current.size:
                    by_vertex[candidate.vertex] = candidate
        ranked = sorted(by_vertex.values(), key=lambda nb: -nb.size)
        if not ranked:
            raise AlgorithmFailed(
                f"no neighbourhood reached size {self.threshold}"
            )
        return ranked[: self.k]

    def finalize(self) -> List[Neighbourhood]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        ranked neighbourhoods, or ``[]`` instead of raising on failure."""
        try:
            return self.results()
        except AlgorithmFailed:
            return []

    def space_breakdown(self) -> SpaceBreakdown:
        return self._inner.space_breakdown()

    def space_words(self) -> int:
        return self._inner.space_words()
