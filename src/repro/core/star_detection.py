"""Star Detection via FEwW (Lemma 3.3, Corollaries 3.4 and 5.5).

Star Detection asks for a vertex of (approximately) maximum degree in a
general graph *together with* a proportional share of its neighbours.
Lemma 3.3 reduces it to FEwW: run the FEwW algorithm for
``O(log_{1+ε} n)`` geometric guesses ``Δ' ∈ {1, 1+ε, (1+ε)², ...}`` of
the unknown maximum degree Δ, on the bipartite double cover of the
input graph.  The run whose guess is the largest ``Δ' <= Δ`` outputs a
neighbourhood of size ``>= Δ / ((1+ε) α)``, making the whole wrapper a
``(1+ε)α``-approximation at a ``log_{1+ε} n`` space overhead.

With the insertion-only algorithm and ``α = log n`` this yields the
semi-streaming ``O(log n)``-approximation of Corollary 3.4; with the
insertion-deletion algorithm and ``α = √n`` it yields Corollary 5.5.

Execution is batch-first: :class:`StarDetection` conforms to the
:class:`~repro.engine.StreamProcessor` protocol, and its
:meth:`~StarDetection.process_batch` sorts each double-cover chunk
*once* and shares the grouping across all ``O(log_{1+ε} n)`` degree
guesses — so the guess ladder costs one vectorized pass over the
stream, not ``O(log n)`` per-item sweeps.  The per-item path
(:meth:`~StarDetection.process_item`) is retained as the reference
implementation; the two are bit-identical (equivalence-tested).
"""

from __future__ import annotations

import copy
import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.spacemeter import SpaceBreakdown
from repro.streams.adapters import bipartite_double_cover_columnar
from repro.streams.columnar import group_slices
from repro.streams.edge import INSERT, StreamItem
from repro.streams.stream import EdgeStream


def degree_guesses(n: int, eps: float) -> List[int]:
    """The geometric guess ladder ``{1, 1+ε, (1+ε)², ...}`` rounded to ints.

    Duplicate integer guesses (common for small powers) are merged; the
    ladder always covers ``[1, n]`` so every possible Δ has a guess
    within factor ``1+ε`` below it.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    guesses = []
    value = 1.0
    while value <= n * (1 + eps):
        guesses.append(max(1, math.floor(value)))
        value *= 1 + eps
    return sorted(set(guesses))


def _endpoint_columns(edges) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise an undirected edge source into two endpoint columns.

    Accepts a ``(u_column, v_column)`` tuple of arrays or lists, or any
    iterable of ``(u, v)`` pair tuples (stacked once).  A 2-tuple whose
    elements are lists/arrays is always read as columns — a tuple of
    *pair tuples* stays an edge iterable — so column input is never
    silently misparsed as two edges.
    """
    if (
        isinstance(edges, tuple)
        and len(edges) == 2
        and isinstance(edges[0], (list, np.ndarray))
    ):
        u, v = edges
        return (
            np.ascontiguousarray(u, dtype=np.int64),
            np.ascontiguousarray(v, dtype=np.int64),
        )
    edge_list = list(edges)
    if not edge_list:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    stacked = np.asarray(edge_list, dtype=np.int64)
    if stacked.ndim != 2 or stacked.shape[1] != 2:
        raise ValueError(
            f"expected (u, v) pairs, got array of shape {stacked.shape}"
        )
    return (
        np.ascontiguousarray(stacked[:, 0]),
        np.ascontiguousarray(stacked[:, 1]),
    )


@dataclass(frozen=True)
class StarDetectionResult:
    """Output of Star Detection: the star centre, its witnesses, and the
    degree guess of the run that produced them."""

    neighbourhood: Neighbourhood
    winning_guess: int

    @property
    def vertex(self) -> int:
        return self.neighbourhood.vertex

    @property
    def size(self) -> int:
        return self.neighbourhood.size


class StarDetection:
    """Lemma 3.3's wrapper around a FEwW algorithm.

    Args:
        n_vertices: number of vertices of the general input graph.
        alpha: approximation factor passed to each FEwW run.
        eps: guess-ladder resolution; the wrapper is a ``(1+ε)α``-approx.
        model: ``"insertion-only"`` (Algorithm 2 per guess) or
            ``"insertion-deletion"`` (Algorithm 3 per guess).
        seed: RNG seed shared out to the per-guess runs.
        scale: forwarded to Algorithm 3 (sampler-count multiplier).
        sampler_mode: forwarded to Algorithm 3.
    """

    MODELS = ("insertion-only", "insertion-deletion")

    def __init__(
        self,
        n_vertices: int,
        alpha: int,
        eps: float = 0.5,
        model: str = "insertion-only",
        seed: int | None = None,
        scale: float = 1.0,
        sampler_mode: str = "fast",
    ) -> None:
        if model not in self.MODELS:
            raise ValueError(f"model must be one of {self.MODELS}, got {model!r}")
        self.n_vertices = n_vertices
        self.alpha = alpha
        self.eps = eps
        self.model = model
        self.guesses = degree_guesses(n_vertices, eps)
        root = random.Random(seed)
        self._runs: List[Tuple[int, object]] = []
        for guess in self.guesses:
            run_seed = root.getrandbits(64)
            if model == "insertion-only":
                algorithm: object = InsertionOnlyFEwW(
                    n_vertices, guess, alpha, seed=run_seed
                )
            else:
                algorithm = InsertionDeletionFEwW(
                    n_vertices,
                    n_vertices,
                    guess,
                    alpha,
                    seed=run_seed,
                    scale=scale,
                    sampler_mode=sampler_mode,
                )
            self._runs.append((guess, algorithm))
        self._updates_seen = 0

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def process_undirected(
        self,
        edges: Iterable[Tuple[int, int]],
        signs: Iterable[int] | None = None,
    ) -> "StarDetection":
        """Double-cover an undirected edge stream and feed every run.

        ``edges`` may be a sequence of ``(u, v)`` pairs or a pair of
        endpoint columns ``(u_array, v_array)``; either way the cover is
        built vectorized and consumed through the batch engine.
        """
        u, v = _endpoint_columns(edges)
        cover = bipartite_double_cover_columnar(
            u,
            v,
            self.n_vertices,
            None if signs is None else np.asarray(list(signs), dtype=np.int64),
        )
        return self.process(cover)

    def process(self, stream) -> "StarDetection":
        """Feed an already-doubled bipartite stream through the engine.

        Accepts anything :func:`repro.engine.as_chunks` does — a
        :class:`~repro.streams.columnar.ColumnarEdgeStream`, a boxed
        :class:`~repro.streams.stream.EdgeStream`, a persisted stream
        path, or a chunk iterable.  One single pass feeds every guess.
        """
        # Deferred import: core must stay importable without the engine
        # package at module load (engine imports streams, not core).
        from repro.engine import as_chunks

        for a, b, sign in as_chunks(stream):
            self.process_batch(a, b, sign)
        return self

    def process_item(self, item: StreamItem) -> None:
        """Reference per-item path: feed one doubled update to every run."""
        self._updates_seen += 1
        for _, algorithm in self._runs:
            algorithm.process_item(item)  # type: ignore[attr-defined]

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Feed one column chunk of the double cover to every guess.

        For the insertion-only model the chunk is sorted once
        (:func:`~repro.streams.columnar.group_slices`) and that grouping
        is shared by every guess's Algorithm 2 instance, which is what
        collapses the ``O(log_{1+ε} n)`` guess ladder into a single
        vectorized pass.  State after the call is bit-identical to
        feeding the chunk through :meth:`process_item` in order: the
        per-guess structures are independent, so fanning a chunk to the
        guesses sequentially commutes with interleaving items.
        """
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if len(a) == 0:
            return
        self._updates_seen += len(a)
        if self.model == "insertion-only":
            if sign is not None and np.any(sign != INSERT):
                raise ValueError(
                    "insertion-only Star Detection cannot process deletions; "
                    "construct with model='insertion-deletion'"
                )
            grouping = group_slices(a)
            for _, algorithm in self._runs:
                algorithm.process_batch(  # type: ignore[attr-defined]
                    a, b, grouping=grouping
                )
        else:
            for _, algorithm in self._runs:
                algorithm.process_batch(a, b, sign)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    @property
    def shard_routing(self):
        """Inherited from the per-guess algorithm: Algorithm 2 shards by
        vertex hash, Algorithm 3's linear sketches accept any split."""
        return "vertex" if self.model == "insertion-only" else "any"

    def merge(self, other: "StarDetection") -> "StarDetection":
        """Merge every degree guess's run with its counterpart.

        Both operands must be split from the same seeded wrapper (same
        guess ladder, same per-guess seeds); each rung merges via its
        algorithm's own rule, so the wrapper inherits the per-algorithm
        sharding guarantees rung by rung.
        """
        if not isinstance(other, StarDetection):
            raise ValueError(
                f"cannot merge StarDetection with {type(other).__name__}"
            )
        if (
            self.n_vertices,
            self.alpha,
            self.eps,
            self.model,
            self.guesses,
        ) != (
            other.n_vertices,
            other.alpha,
            other.eps,
            other.model,
            other.guesses,
        ):
            raise ValueError(
                "cannot merge Star Detection wrappers with different "
                "parameters; split both from the same seeded instance"
            )
        for (_, mine), (_, theirs) in zip(self._runs, other._runs):
            mine.merge(theirs)  # type: ignore[attr-defined]
        self._updates_seen += other._updates_seen
        return self

    def split(self, n_shards: int) -> List["StarDetection"]:
        """``n_shards`` empty same-seed shard wrappers (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._updates_seen:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    def result(self) -> StarDetectionResult:
        """Largest neighbourhood over all successful guesses.

        Raises:
            AlgorithmFailed: when every guess's run failed (only possible
            on an empty graph or with algorithm failure probability).
        """
        best: Optional[StarDetectionResult] = None
        for guess, algorithm in self._runs:
            try:
                neighbourhood = algorithm.result()  # type: ignore[attr-defined]
            except AlgorithmFailed:
                continue
            if best is None or neighbourhood.size > best.size:
                best = StarDetectionResult(neighbourhood, guess)
        if best is None:
            raise AlgorithmFailed("Star Detection: every degree-guess run failed")
        return best

    def finalize(self) -> Optional[StarDetectionResult]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the best
        guess's result, or ``None`` instead of raising on failure."""
        try:
            return self.result()
        except AlgorithmFailed:
            return None

    def approximation_ratio(self) -> float:
        """The wrapper's guarantee, ``(1+ε) α``."""
        return (1 + self.eps) * self.alpha

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        breakdown = SpaceBreakdown()
        for guess, algorithm in self._runs:
            breakdown.merge(
                algorithm.space_breakdown(),  # type: ignore[attr-defined]
                prefix=f"guess {guess}: ",
            )
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
