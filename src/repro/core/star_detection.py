"""Star Detection via FEwW (Lemma 3.3, Corollaries 3.4 and 5.5).

Star Detection asks for a vertex of (approximately) maximum degree in a
general graph *together with* a proportional share of its neighbours.
Lemma 3.3 reduces it to FEwW: run the FEwW algorithm for
``O(log_{1+ε} n)`` geometric guesses ``Δ' ∈ {1, 1+ε, (1+ε)², ...}`` of
the unknown maximum degree Δ, on the bipartite double cover of the
input graph.  The run whose guess is the largest ``Δ' <= Δ`` outputs a
neighbourhood of size ``>= Δ / ((1+ε) α)``, making the whole wrapper a
``(1+ε)α``-approximation at a ``log_{1+ε} n`` space overhead.

With the insertion-only algorithm and ``α = log n`` this yields the
semi-streaming ``O(log n)``-approximation of Corollary 3.4; with the
insertion-deletion algorithm and ``α = √n`` it yields Corollary 5.5.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.spacemeter import SpaceBreakdown
from repro.streams.adapters import bipartite_double_cover
from repro.streams.stream import EdgeStream


def degree_guesses(n: int, eps: float) -> List[int]:
    """The geometric guess ladder ``{1, 1+ε, (1+ε)², ...}`` rounded to ints.

    Duplicate integer guesses (common for small powers) are merged; the
    ladder always covers ``[1, n]`` so every possible Δ has a guess
    within factor ``1+ε`` below it.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    guesses = []
    value = 1.0
    while value <= n * (1 + eps):
        guesses.append(max(1, math.floor(value)))
        value *= 1 + eps
    return sorted(set(guesses))


@dataclass(frozen=True)
class StarDetectionResult:
    """Output of Star Detection: the star centre, its witnesses, and the
    degree guess of the run that produced them."""

    neighbourhood: Neighbourhood
    winning_guess: int

    @property
    def vertex(self) -> int:
        return self.neighbourhood.vertex

    @property
    def size(self) -> int:
        return self.neighbourhood.size


class StarDetection:
    """Lemma 3.3's wrapper around a FEwW algorithm.

    Args:
        n_vertices: number of vertices of the general input graph.
        alpha: approximation factor passed to each FEwW run.
        eps: guess-ladder resolution; the wrapper is a ``(1+ε)α``-approx.
        model: ``"insertion-only"`` (Algorithm 2 per guess) or
            ``"insertion-deletion"`` (Algorithm 3 per guess).
        seed: RNG seed shared out to the per-guess runs.
        scale: forwarded to Algorithm 3 (sampler-count multiplier).
        sampler_mode: forwarded to Algorithm 3.
    """

    MODELS = ("insertion-only", "insertion-deletion")

    def __init__(
        self,
        n_vertices: int,
        alpha: int,
        eps: float = 0.5,
        model: str = "insertion-only",
        seed: int | None = None,
        scale: float = 1.0,
        sampler_mode: str = "fast",
    ) -> None:
        if model not in self.MODELS:
            raise ValueError(f"model must be one of {self.MODELS}, got {model!r}")
        self.n_vertices = n_vertices
        self.alpha = alpha
        self.eps = eps
        self.model = model
        self.guesses = degree_guesses(n_vertices, eps)
        root = random.Random(seed)
        self._runs: List[Tuple[int, object]] = []
        for guess in self.guesses:
            run_seed = root.getrandbits(64)
            if model == "insertion-only":
                algorithm: object = InsertionOnlyFEwW(
                    n_vertices, guess, alpha, seed=run_seed
                )
            else:
                algorithm = InsertionDeletionFEwW(
                    n_vertices,
                    n_vertices,
                    guess,
                    alpha,
                    seed=run_seed,
                    scale=scale,
                    sampler_mode=sampler_mode,
                )
            self._runs.append((guess, algorithm))

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def process_undirected(
        self,
        edges: Iterable[Tuple[int, int]],
        signs: Iterable[int] | None = None,
    ) -> "StarDetection":
        """Double-cover an undirected edge stream and feed every run."""
        stream = bipartite_double_cover(edges, self.n_vertices, signs)
        return self.process(stream)

    def process(self, stream: EdgeStream) -> "StarDetection":
        """Feed an already-doubled bipartite stream to every run."""
        for item in stream:
            for _, algorithm in self._runs:
                algorithm.process_item(item)  # type: ignore[attr-defined]
        return self

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    def result(self) -> StarDetectionResult:
        """Largest neighbourhood over all successful guesses.

        Raises:
            AlgorithmFailed: when every guess's run failed (only possible
            on an empty graph or with algorithm failure probability).
        """
        best: Optional[StarDetectionResult] = None
        for guess, algorithm in self._runs:
            try:
                neighbourhood = algorithm.result()  # type: ignore[attr-defined]
            except AlgorithmFailed:
                continue
            if best is None or neighbourhood.size > best.size:
                best = StarDetectionResult(neighbourhood, guess)
        if best is None:
            raise AlgorithmFailed("Star Detection: every degree-guess run failed")
        return best

    def approximation_ratio(self) -> float:
        """The wrapper's guarantee, ``(1+ε) α``."""
        return (1 + self.eps) * self.alpha

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        breakdown = SpaceBreakdown()
        for guess, algorithm in self._runs:
            breakdown.merge(
                algorithm.space_breakdown(),  # type: ignore[attr-defined]
                prefix=f"guess {guess}: ",
            )
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
