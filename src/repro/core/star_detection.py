"""Star Detection via FEwW (Lemma 3.3, Corollaries 3.4 and 5.5).

Star Detection asks for a vertex of (approximately) maximum degree in a
general graph *together with* a proportional share of its neighbours.
Lemma 3.3 reduces it to FEwW: run the FEwW algorithm for
``O(log_{1+ε} n)`` geometric guesses ``Δ' ∈ {1, 1+ε, (1+ε)², ...}`` of
the unknown maximum degree Δ, on the bipartite double cover of the
input graph.  The run whose guess is the largest ``Δ' <= Δ`` outputs a
neighbourhood of size ``>= Δ / ((1+ε) α)``, making the whole wrapper a
``(1+ε)α``-approximation at a ``log_{1+ε} n`` space overhead.

With the insertion-only algorithm and ``α = log n`` this yields the
semi-streaming ``O(log n)``-approximation of Corollary 3.4; with the
insertion-deletion algorithm and ``α = √n`` it yields Corollary 5.5.

Execution is batch-first: :class:`StarDetection` conforms to the
:class:`~repro.engine.StreamProcessor` protocol, and its
:meth:`~StarDetection.process_batch` sorts each double-cover chunk
*once* and shares the grouping across all ``O(log_{1+ε} n)`` degree
guesses — so the guess ladder costs one vectorized pass over the
stream, not ``O(log n)`` per-item sweeps.  The per-item path
(:meth:`~StarDetection.process_item`) is retained as the reference
implementation; the two are bit-identical (equivalence-tested).
"""

from __future__ import annotations

import copy
import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.sketch.exact import DegreeCounter
from repro.spacemeter import SpaceBreakdown
from repro.streams.adapters import bipartite_double_cover_columnar
from repro.streams.columnar import group_slices
from repro.streams.edge import INSERT, Edge, StreamItem, insert_signs
from repro.streams.stream import EdgeStream


def degree_guesses(n: int, eps: float) -> List[int]:
    """The geometric guess ladder ``{1, 1+ε, (1+ε)², ...}`` rounded to ints.

    Duplicate integer guesses (common for small powers) are merged; the
    ladder always covers ``[1, n]`` so every possible Δ has a guess
    within factor ``1+ε`` below it.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    guesses = []
    value = 1.0
    while value <= n * (1 + eps):
        guesses.append(max(1, math.floor(value)))
        value *= 1 + eps
    return sorted(set(guesses))


def _endpoint_columns(edges) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise an undirected edge source into two endpoint columns.

    Accepts a ``(u_column, v_column)`` tuple of arrays or lists, or any
    iterable of ``(u, v)`` pair tuples (stacked once).  A 2-tuple whose
    elements are lists/arrays is always read as columns — a tuple of
    *pair tuples* stays an edge iterable — so column input is never
    silently misparsed as two edges.
    """
    if (
        isinstance(edges, tuple)
        and len(edges) == 2
        and isinstance(edges[0], (list, np.ndarray))
    ):
        u, v = edges
        return (
            np.ascontiguousarray(u, dtype=np.int64),
            np.ascontiguousarray(v, dtype=np.int64),
        )
    edge_list = list(edges)
    if not edge_list:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    stacked = np.asarray(edge_list, dtype=np.int64)
    if stacked.ndim != 2 or stacked.shape[1] != 2:
        raise ValueError(
            f"expected (u, v) pairs, got array of shape {stacked.shape}"
        )
    return (
        np.ascontiguousarray(stacked[:, 0]),
        np.ascontiguousarray(stacked[:, 1]),
    )


@dataclass(frozen=True)
class StarDetectionResult:
    """Output of Star Detection: the star centre, its witnesses, and the
    degree guess of the run that produced them."""

    neighbourhood: Neighbourhood
    winning_guess: int

    @property
    def vertex(self) -> int:
        return self.neighbourhood.vertex

    @property
    def size(self) -> int:
        return self.neighbourhood.size


class StarDetection:
    """Lemma 3.3's wrapper around a FEwW algorithm.

    Args:
        n_vertices: number of vertices of the general input graph.
        alpha: approximation factor passed to each FEwW run.
        eps: guess-ladder resolution; the wrapper is a ``(1+ε)α``-approx.
        model: ``"insertion-only"`` (Algorithm 2 per guess) or
            ``"insertion-deletion"`` (Algorithm 3 per guess).
        seed: RNG seed shared out to the per-guess runs.
        scale: forwarded to Algorithm 3 (sampler-count multiplier).
        sampler_mode: forwarded to Algorithm 3.
    """

    MODELS = ("insertion-only", "insertion-deletion")

    #: Chunk size for :meth:`process`.  The ladder-wide hoisted work
    #: (sort, degree scatter, crossing scan / netting) amortises over
    #: the chunk, but every rung still pays a small fixed cost per
    #: chunk — larger chunks than the engine default keep that fan-out
    #: overhead negligible.  Chunking never changes results (state is
    #: bit-identical to per-item processing at any chunk size).
    PROCESS_CHUNK_SIZE = 1 << 16

    def __init__(
        self,
        n_vertices: int,
        alpha: int,
        eps: float = 0.5,
        model: str = "insertion-only",
        seed: int | None = None,
        scale: float = 1.0,
        sampler_mode: str = "fast",
    ) -> None:
        if model not in self.MODELS:
            raise ValueError(f"model must be one of {self.MODELS}, got {model!r}")
        self.n_vertices = n_vertices
        self.alpha = alpha
        self.eps = eps
        self.model = model
        self.guesses = degree_guesses(n_vertices, eps)
        root = random.Random(seed)
        self._runs: List[Tuple[int, object]] = []
        for guess in self.guesses:
            run_seed = root.getrandbits(64)
            if model == "insertion-only":
                algorithm: object = InsertionOnlyFEwW(
                    n_vertices, guess, alpha, seed=run_seed, own_degrees=False
                )
            else:
                algorithm = InsertionDeletionFEwW(
                    n_vertices,
                    n_vertices,
                    guess,
                    alpha,
                    seed=run_seed,
                    scale=scale,
                    sampler_mode=sampler_mode,
                )
            self._runs.append((guess, algorithm))
        self._updates_seen = 0
        #: One degree counter shared by the whole guess ladder
        #: (insertion-only): each rung's Algorithm 2 runs in
        #: externally-driven mode, so the O(n log n)-bit table is
        #: incremented once per chunk instead of once per guess.  The
        #: counter draws no randomness, so per-guess RNG trajectories
        #: are identical to independently-counting instances.
        self._degrees: Optional[DegreeCounter] = None
        if model == "insertion-only":
            self._degrees = DegreeCounter(n_vertices)
            # Every distinct d1 threshold across all rungs and their α
            # parallel runs, plus a boolean lookup table over degree
            # values so one scan of a chunk finds every rung's
            # crossings (degree_after == d1) at once.
            thresholds = sorted(
                {run.d1 for _, algorithm in self._runs for run in algorithm.runs}
            )
            self._thresholds: List[int] = thresholds
            self._max_threshold = thresholds[-1]
            lut = np.zeros(self._max_threshold + 2, dtype=bool)
            lut[np.asarray(thresholds, dtype=np.int64)] = True
            self._threshold_lut = lut

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def process_undirected(
        self,
        edges: Iterable[Tuple[int, int]],
        signs: Iterable[int] | None = None,
    ) -> "StarDetection":
        """Double-cover an undirected edge stream and feed every run.

        ``edges`` may be a sequence of ``(u, v)`` pairs or a pair of
        endpoint columns ``(u_array, v_array)``; either way the cover is
        built vectorized and consumed through the batch engine.
        """
        u, v = _endpoint_columns(edges)
        cover = bipartite_double_cover_columnar(
            u,
            v,
            self.n_vertices,
            None if signs is None else np.asarray(list(signs), dtype=np.int64),
        )
        return self.process(cover)

    def process(self, stream) -> "StarDetection":
        """Feed an already-doubled bipartite stream through the engine.

        Accepts anything :func:`repro.engine.as_chunks` does — a
        :class:`~repro.streams.columnar.ColumnarEdgeStream`, a boxed
        :class:`~repro.streams.stream.EdgeStream`, a persisted stream
        path, or a chunk iterable.  One single pass feeds every guess.
        """
        # Deferred import: core must stay importable without the engine
        # package at module load (engine imports streams, not core).
        from repro.engine import as_chunks

        for a, b, sign in as_chunks(stream, self.PROCESS_CHUNK_SIZE):
            self.process_batch(a, b, sign)
        return self

    def process_item(self, item: StreamItem) -> None:
        """Reference per-item path: feed one doubled update to every run.

        Insertion-only: the shared counter increments once and the
        post-increment degree fans out to every rung — bit-identical to
        each rung counting for itself (the counts would be equal).
        """
        self._updates_seen += 1
        if self.model == "insertion-only":
            if item.is_delete:
                raise ValueError(
                    "Algorithm 2 handles insertion-only streams; "
                    "use InsertionDeletionFEwW for turnstile input"
                )
            a, b = item.edge.a, item.edge.b
            degree = self._degrees.increment(a)
            for _, algorithm in self._runs:
                algorithm.observe_item(a, b, degree)  # type: ignore[attr-defined]
        else:
            for _, algorithm in self._runs:
                algorithm.process_item(item)  # type: ignore[attr-defined]

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Feed one column chunk of the double cover to every guess.

        The ladder-wide work is hoisted and done once per chunk, not
        once per guess.  Insertion-only: the chunk is sorted once
        (:func:`~repro.streams.columnar.group_slices`), the shared
        degree counter increments once, and a single lookup-table scan
        finds every rung's threshold crossings
        (``degree_after == d1``) — each of the ``O(α log_{1+ε} n)``
        parallel runs then only replays its own rare crossings.
        Insertion-deletion: the chunk is range-checked and netted
        (``np.unique`` + scatter-add on the flat edge coordinate) once,
        and every rung's linear sketches consume the shared netted
        column.  State after the call is bit-identical to feeding the
        chunk through :meth:`process_item` in order: the per-guess
        structures are independent, so fanning a chunk to the guesses
        sequentially commutes with interleaving items.
        """
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if len(a) == 0:
            return
        self._updates_seen += len(a)
        if self.model == "insertion-only":
            if sign is not None and np.any(sign != INSERT):
                raise ValueError(
                    "insertion-only Star Detection cannot process deletions; "
                    "construct with model='insertion-deletion'"
                )
            grouping = group_slices(a)
            order, starts, ends = grouping
            degree_after = self._degrees.increment_batch(a, grouping=grouping)
            composite = a[order] * np.int64(len(a)) + order
            run_grouping = (order, starts, ends, a[order[starts]], composite)
            # One pass over the chunk finds every rung's crossings: a
            # position crosses threshold t iff degree_after == t, and
            # the LUT marks exactly the ladder's thresholds.  Slicing
            # the (rare) hits per threshold preserves ascending order,
            # so each run sees exactly np.flatnonzero(degree_after == d1).
            capped = np.minimum(degree_after, self._max_threshold + 1)
            hits = np.flatnonzero(self._threshold_lut[capped])
            hit_degrees = degree_after[hits]
            crossings = {
                threshold: hits[hit_degrees == threshold]
                for threshold in self._thresholds
            }
            for _, algorithm in self._runs:
                algorithm.observe_batch(  # type: ignore[attr-defined]
                    a,
                    b,
                    degree_after,
                    grouping=run_grouping,
                    crossings=crossings,
                )
        else:
            n, m = self.n_vertices, self.n_vertices
            if sign is None:
                sign = insert_signs(len(a))
            else:
                sign = np.ascontiguousarray(sign, dtype=np.int64)
            if (
                int(a.min()) < 0
                or int(a.max()) >= n
                or int(b.min()) < 0
                or int(b.max()) >= m
            ):
                bad = np.flatnonzero(
                    (a < 0) | (a >= n) | (b < 0) | (b >= m)
                )[0]
                edge = Edge(int(a[bad]), int(b[bad]))
                raise ValueError(f"edge {edge} out of range for ({n}, {m})")
            flat = a * m + b
            unique, inverse = np.unique(flat, return_inverse=True)
            net = np.zeros(len(unique), dtype=np.int64)
            np.add.at(net, inverse, sign)
            live = net != 0
            unique, net = unique[live], net[live]
            for _, algorithm in self._runs:
                algorithm.process_netted(  # type: ignore[attr-defined]
                    unique, net, len(a)
                )

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    @property
    def shard_routing(self):
        """Inherited from the per-guess algorithm: Algorithm 2 shards by
        vertex hash, Algorithm 3's linear sketches accept any split."""
        return "vertex" if self.model == "insertion-only" else "any"

    def merge(self, other: "StarDetection") -> "StarDetection":
        """Merge every degree guess's run with its counterpart.

        Both operands must be split from the same seeded wrapper (same
        guess ladder, same per-guess seeds); each rung merges via its
        algorithm's own rule, so the wrapper inherits the per-algorithm
        sharding guarantees rung by rung.
        """
        if not isinstance(other, StarDetection):
            raise ValueError(
                f"cannot merge StarDetection with {type(other).__name__}"
            )
        if (
            self.n_vertices,
            self.alpha,
            self.eps,
            self.model,
            self.guesses,
        ) != (
            other.n_vertices,
            other.alpha,
            other.eps,
            other.model,
            other.guesses,
        ):
            raise ValueError(
                "cannot merge Star Detection wrappers with different "
                "parameters; split both from the same seeded instance"
            )
        if self._degrees is not None:
            self._degrees.merge(other._degrees)
        for (_, mine), (_, theirs) in zip(self._runs, other._runs):
            mine.merge(theirs)  # type: ignore[attr-defined]
        self._updates_seen += other._updates_seen
        return self

    def split(self, n_shards: int) -> List["StarDetection"]:
        """``n_shards`` empty same-seed shard wrappers (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._updates_seen:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    def result(self) -> StarDetectionResult:
        """Largest neighbourhood over all successful guesses.

        Raises:
            AlgorithmFailed: when every guess's run failed (only possible
            on an empty graph or with algorithm failure probability).
        """
        best: Optional[StarDetectionResult] = None
        for guess, algorithm in self._runs:
            try:
                neighbourhood = algorithm.result()  # type: ignore[attr-defined]
            except AlgorithmFailed:
                continue
            if best is None or neighbourhood.size > best.size:
                best = StarDetectionResult(neighbourhood, guess)
        if best is None:
            raise AlgorithmFailed("Star Detection: every degree-guess run failed")
        return best

    def finalize(self) -> Optional[StarDetectionResult]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the best
        guess's result, or ``None`` instead of raising on failure."""
        try:
            return self.result()
        except AlgorithmFailed:
            return None

    def approximation_ratio(self) -> float:
        """The wrapper's guarantee, ``(1+ε) α``."""
        return (1 + self.eps) * self.alpha

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Shared degree table charged once for the whole ladder
        (insertion-only), plus each rung's residency/sampler state."""
        breakdown = SpaceBreakdown()
        if self._degrees is not None:
            breakdown.add("degree counts", self._degrees.space_words())
        for guess, algorithm in self._runs:
            breakdown.merge(
                algorithm.space_breakdown(),  # type: ignore[attr-defined]
                prefix=f"guess {guess}: ",
            )
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
