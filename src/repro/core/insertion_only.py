"""Algorithm 2: the α-approximation for insertion-only streams.

Runs ``Deg-Res-Sampling(max(1, i*d/α), d/α, s)`` in parallel for
``i = 0 .. α-1`` with reservoir size ``s = ceil(ln(n) * n^{1/α})`` and
returns any successful run's neighbourhood.  Theorem 3.2: if some
A-vertex has degree at least ``d``, at least one run succeeds with
probability at least ``1 - 1/n``, and the total space is
``O(n log n + n^{1/α} d log² n)`` bits.

Integrality: for non-divisible ``d / α`` we collect
``d2 = ceil(d / α)`` witnesses per sampled vertex and use thresholds
``d1_i = max(1, floor(i d / α))``.  These choices preserve the chain
``d1_{i+1} >= d1_i + d2 - 1`` that the counting argument in the proof of
Theorem 3.2 needs, and a ``d2``-witness output meets the required
``d / α`` bound.
"""

from __future__ import annotations

import copy
import math
import random
from typing import List, Optional

import numpy as np

from repro.core.deg_res_sampling import DegResSampling, collect_witnesses
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.sketch.exact import DegreeCounter
from repro.spacemeter import SpaceBreakdown
from repro.streams.columnar import group_slices
from repro.streams.edge import INSERT, StreamItem
from repro.streams.stream import EdgeStream


def reservoir_size(n: int, alpha: int) -> int:
    """Reservoir size ``s = ceil(ln(n) * n^{1/alpha})`` from Algorithm 2."""
    if n < 2:
        return 1
    return math.ceil(math.log(n) * n ** (1.0 / alpha))


class InsertionOnlyFEwW:
    """The paper's Algorithm 2.

    Args:
        n: number of A-vertices.
        d: degree threshold (the promise: some A-vertex has degree >= d).
        alpha: integral approximation factor (>= 1).
        seed: RNG seed; runs derive independent generators from it.
        reservoir_override: replace the default ``ceil(ln n * n^{1/α})``
            reservoir size (used by ablation benchmarks).
        own_degrees: when True (standalone mode) the instance maintains
            its own shared degree counter and accepts :meth:`process` /
            :meth:`process_item` / :meth:`process_batch`; when False the
            caller (Star Detection's guess ladder) owns one counter for
            the whole ladder and drives :meth:`observe_item` /
            :meth:`observe_batch` with post-increment degrees.  The RNG
            trajectory is identical either way (the counter draws no
            randomness).
    """

    #: The paper's Algorithm 2 shards by vertex hash: the shared degree
    #: table and every run's residency-window witness collection stay
    #: exact inside each vertex's owning shard (see
    #: repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(
        self,
        n: int,
        d: int,
        alpha: int,
        seed: int | None = None,
        reservoir_override: int | None = None,
        own_degrees: bool = True,
    ) -> None:
        if alpha < 1:
            raise ValueError(f"alpha must be an integer >= 1, got {alpha}")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if d > 0 and n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.d = d
        self.alpha = alpha
        self.s = reservoir_override if reservoir_override is not None else reservoir_size(n, alpha)
        self.d2 = math.ceil(d / alpha)
        root = random.Random(seed)
        self._degrees: Optional[DegreeCounter] = DegreeCounter(n) if own_degrees else None
        self.runs: List[DegResSampling] = []
        for i in range(alpha):
            d1 = max(1, (i * d) // alpha)
            run_rng = random.Random(root.getrandbits(64))
            self.runs.append(
                DegResSampling(n, d1, self.d2, self.s, run_rng, own_degrees=False)
            )
        #: Entropy for per-shard RNG derivation (split()), drawn from the
        #: root so it is deterministic for explicit seeds but fresh (OS
        #: entropy) for seed=None — unseeded sharded runs must stay
        #: independent across repetitions, or repeating a failed run
        #: could never boost the success probability.
        self._seed_entropy = root.getrandbits(64)

    # ------------------------------------------------------------------
    # Stream processing.
    # ------------------------------------------------------------------

    def observe_item(self, a: int, b: int, degree: int) -> None:
        """Feed one update to every run given ``a``'s post-increment degree.

        Externally-driven counterpart of :meth:`process_item` — the
        caller owns the degree counter shared across a whole guess
        ladder, so the ``O(n log n)``-bit table is charged (and
        incremented) once, not once per guess.
        """
        for run in self.runs:
            # Fast path: a run only reacts when the vertex crosses its d1
            # threshold or already sits in its reservoir; anything else is
            # a guaranteed no-op, skipped without the method call.
            if degree != run.d1 and a not in run._reservoir:
                continue
            run.observe_edge(a, b, degree)

    def process_item(self, item: StreamItem) -> None:
        """Feed one stream item to every parallel run."""
        if item.is_delete:
            raise ValueError(
                "Algorithm 2 handles insertion-only streams; "
                "use InsertionDeletionFEwW for turnstile input"
            )
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "use observe_item"
            )
        a, b = item.edge.a, item.edge.b
        degree = self._degrees.increment(a)
        self.observe_item(a, b, degree)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
        *,
        grouping=None,
    ) -> None:
        """Feed a column chunk of insertions to every parallel run.

        The shared degree table is updated with one vectorized scatter,
        and each run receives the same post-increment degree vector — so
        the ``O(n log n)``-bit table is still charged (and computed) once,
        not α times.  State after the call is bit-identical to feeding
        the chunk through :meth:`process_item` one update at a time.

        ``grouping`` optionally passes a precomputed stable
        ``(order, starts, ends)`` grouping of ``a`` (see
        :func:`repro.streams.columnar.group_slices`); Star Detection
        uses it to sort each double-cover chunk once and share the
        result across all ``O(log n)`` degree-guess instances.
        """
        if sign is not None and np.any(sign != INSERT):
            raise ValueError(
                "Algorithm 2 handles insertion-only streams; "
                "use InsertionDeletionFEwW for turnstile input"
            )
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "use observe_batch"
            )
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if len(a) == 0:
            return
        # One stable grouping of the chunk serves the shared degree
        # update and every run's witness collection.
        if grouping is None:
            grouping = group_slices(a)
        order, starts, ends = grouping
        degree_after = self._degrees.increment_batch(
            a, grouping=(order, starts, ends)
        )
        composite = a[order] * np.int64(len(a)) + order
        run_grouping = (order, starts, ends, a[order[starts]], composite)
        self.observe_batch(a, b, degree_after, grouping=run_grouping)

    def observe_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        degree_after: np.ndarray,
        *,
        grouping,
        crossings=None,
    ) -> None:
        """Feed a pre-counted column chunk of insertions to every run.

        Externally-driven counterpart of :meth:`process_batch`: the
        caller owns the shared degree counter and passes the
        post-increment degree column plus the run grouping
        ``(order, starts, ends, group_vertices[, composite])``.
        ``crossings`` optionally maps each distinct ``d1`` threshold to
        the ascending chunk positions where ``degree_after`` equals it,
        letting Star Detection extract every rung's crossings from one
        shared scan.  ``a``/``b`` must already be contiguous ``int64``
        and non-empty.

        The α runs' witness-collection tails are fused: each run replays
        its own (rare) crossings in Python, then a single
        :func:`~repro.core.deg_res_sampling.collect_witnesses` pass
        serves every run's occurrence searches and gathers at once.
        State per run is bit-identical to fanning the chunk run by run.
        """
        n_items = len(a)
        requests = []
        for run in self.runs:
            run_crossings = (
                np.flatnonzero(degree_after == run.d1)
                if crossings is None
                else crossings.get(run.d1)
            )
            windows = run._replay_crossings(a, b, run_crossings)
            if not windows:
                continue
            request = run._witness_requests(windows, n_items)
            if request[0]:
                requests.append((run,) + request)
        if not requests:
            return
        order = grouping[0]
        composite = grouping[4] if len(grouping) == 5 else None
        if composite is None:
            composite = a[order] * np.int64(n_items) + order
        collect_witnesses(requests, composite, order, b)

    def process(self, stream: EdgeStream) -> "InsertionOnlyFEwW":
        """Consume an entire stream; returns self for chaining."""
        for item in stream:
            self.process_item(item)
        return self

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def clone(self) -> "InsertionOnlyFEwW":
        """An independent duplicate of the full Algorithm 2 state.

        Equivalent to ``copy.deepcopy`` (the shared degree table, every
        run's reservoir, and all RNG states carry over) without the
        generic graph walk — the window-policy fold/probe fast path.
        """
        dup = object.__new__(InsertionOnlyFEwW)
        dup.n, dup.d, dup.alpha = self.n, self.d, self.alpha
        dup.s, dup.d2 = self.s, self.d2
        dup._degrees = None if self._degrees is None else self._degrees.clone()
        dup.runs = [run.clone() for run in self.runs]
        dup._seed_entropy = self._seed_entropy
        return dup

    def merge(self, other: "InsertionOnlyFEwW") -> "InsertionOnlyFEwW":
        """Combine two Algorithm 2 states over vertex-disjoint sub-streams.

        The shared degree tables add (exact under vertex routing) and
        each of the α parallel runs merges with its counterpart
        (reservoir union, witnesses deduplicated and clipped at merge
        time).  Every shard is a faithful Algorithm 2 execution over its
        sub-stream, so Theorem 3.2's success bound holds for the shard
        owning the promised heavy vertex — the merged state answers with
        at least that probability.
        """
        if not isinstance(other, InsertionOnlyFEwW):
            raise ValueError(
                f"cannot merge InsertionOnlyFEwW with {type(other).__name__}"
            )
        if (self.n, self.d, self.alpha, self.s) != (
            other.n,
            other.d,
            other.alpha,
            other.s,
        ):
            raise ValueError(
                f"cannot merge Algorithm 2 (n={self.n}, d={self.d}, "
                f"alpha={self.alpha}, s={self.s}) with (n={other.n}, "
                f"d={other.d}, alpha={other.alpha}, s={other.s})"
            )
        if (self._degrees is None) != (other._degrees is None):
            raise ValueError(
                "cannot merge a standalone instance (own_degrees=True) "
                "with an externally driven one"
            )
        if self._degrees is not None and other._degrees is not None:
            self._degrees.merge(other._degrees)
        for mine, theirs in zip(self.runs, other.runs):
            mine.merge(theirs)
        return self

    def split(self, n_shards: int) -> List["InsertionOnlyFEwW"]:
        """``n_shards`` empty same-parameter shard instances.

        Each shard's α runs draw from *independently derived* RNG
        streams — :class:`numpy.random.SeedSequence` children spawned
        from the master seed, one per shard — instead of replicating
        the parent's coins.  Replicated coins were harmless for the
        reservoir contents (vertex routing gives shards disjoint
        candidate sets) but made shard trajectories perfectly
        correlated: every shard evicted at the same candidate ordinals,
        which skews which *positions* of a sub-stream survive when
        candidate counts are similar across shards.  Derivation is
        deterministic — the same master seed always produces the same
        per-shard generators — so sharded runs stay reproducible, and
        the no-eviction regime (where no coin is ever flipped) remains
        bit-identical to single-core execution.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "split the owning wrapper instead"
            )
        if self._degrees.max_degree() > 0:
            raise RuntimeError("split() must be called before processing")
        children = np.random.SeedSequence(self._seed_entropy).spawn(n_shards)
        shards = []
        for child in children:
            shard = copy.deepcopy(self)
            words = child.generate_state(self.alpha, dtype=np.uint64)
            for run, word in zip(shard.runs, words.tolist()):
                run._rng = random.Random(int(word))
            shards.append(shard)
        return shards

    # ------------------------------------------------------------------
    # Output.
    # ------------------------------------------------------------------

    @property
    def successful(self) -> bool:
        """True when at least one parallel run succeeded."""
        return any(run.successful for run in self.runs)

    def successful_runs(self) -> List[int]:
        """Indices of the successful parallel runs (for diagnostics)."""
        return [i for i, run in enumerate(self.runs) if run.successful]

    def result(self) -> Neighbourhood:
        """Any successful run's neighbourhood (size >= ceil(d/α)).

        Raises:
            AlgorithmFailed: when every run failed (probability <= 1/n
            under the degree-d promise).
        """
        for run in self.runs:
            if run.successful:
                return run.result()
        raise AlgorithmFailed(
            f"all {self.alpha} parallel runs failed "
            f"(n={self.n}, d={self.d}, alpha={self.alpha}, s={self.s})"
        )

    def finalize(self) -> Optional[Neighbourhood]:
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        algorithm's answer, or ``None`` instead of raising on failure."""
        try:
            return self.result()
        except AlgorithmFailed:
            return None

    def current_degree(self, a: int) -> int:
        """Degree of A-vertex ``a`` seen so far (the shared counter)."""
        if self._degrees is None:
            raise RuntimeError(
                "this instance is driven externally (own_degrees=False); "
                "query the owning wrapper's counter"
            )
        return self._degrees.degree(a)

    # ------------------------------------------------------------------
    # Space accounting.
    # ------------------------------------------------------------------

    def space_breakdown(self) -> SpaceBreakdown:
        """Degree table charged once, plus every run's reservoir state;
        excludes the counter when a guess-ladder wrapper owns it."""
        breakdown = SpaceBreakdown()
        if self._degrees is not None:
            breakdown.add("degree counts", self._degrees.space_words())
        for i, run in enumerate(self.runs):
            breakdown.merge(run.space_breakdown(), prefix=f"run{i} ")
        return breakdown

    def space_words(self) -> int:
        return self.space_breakdown().total_words()
