"""Sketching substrate: hashing, sparse recovery, and ℓ₀-sampling.

The insertion-deletion algorithm of the paper (Algorithm 3) is built on
ℓ₀-samplers in the style of Jowhari, Sağlam and Tardos [26]: structures
that process a stream of signed coordinate updates to a huge implicit
vector and, at query time, return a uniformly random member of the
vector's support.  This package implements the full stack from scratch:

* :mod:`repro.sketch.hashing` — k-wise independent hash families over a
  Mersenne-prime field;
* :mod:`repro.sketch.onesparse` — 1-sparse recovery cells with a
  fingerprint test;
* :mod:`repro.sketch.ssparse` — s-sparse recovery by hashing into
  1-sparse cells;
* :mod:`repro.sketch.l0` — the geometric-level ℓ₀-sampler;
* :mod:`repro.sketch.exact` — exact counters used as oracles by tests.
"""

from repro.sketch.hashing import KWiseHash, PRIME_61, random_kwise
from repro.sketch.onesparse import OneSparseCell, OneSparseResult
from repro.sketch.ssparse import SSparseRecovery
from repro.sketch.l0 import (
    L0EdgeBank,
    L0Sampler,
    L0SamplerBank,
    l0_sampler_space_words,
)
from repro.sketch.exact import DegreeCounter, ExactSupport
from repro.sketch.bloom import BloomDedup, BloomFilter, DuplicateFilter

__all__ = [
    "BloomDedup",
    "BloomFilter",
    "DegreeCounter",
    "DuplicateFilter",
    "ExactSupport",
    "KWiseHash",
    "L0EdgeBank",
    "L0Sampler",
    "L0SamplerBank",
    "OneSparseCell",
    "OneSparseResult",
    "PRIME_61",
    "SSparseRecovery",
    "l0_sampler_space_words",
    "random_kwise",
]
