"""Bloom filters, and a streaming duplicate filter built on them.

The paper's related work cites multi-stage Bloom filters [11] among the
classical FE toolkit; here a Bloom filter serves a substrate role: the
FEwW problem is defined on *simple* graphs, but raw application logs
(router packets, database updates) repeat (item, witness) pairs.
:class:`DuplicateFilter` turns a raw pair stream into a near-simple
edge stream in small space, at the cost of a tunable false-positive
rate (a duplicate-looking pair is dropped, so a small fraction of
genuine first arrivals is lost — which only lowers observed degrees,
never inflates them).
"""

from __future__ import annotations

import math
import random
from typing import Hashable, List

from repro.sketch.hashing import KWiseHash, random_kwise


class BloomFilter:
    """Standard Bloom filter over integer keys.

    Args:
        capacity: expected number of distinct insertions.
        fp_rate: target false-positive probability at capacity.
        rng: randomness for the hash functions.
    """

    def __init__(self, capacity: int, fp_rate: float, rng: random.Random) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0 < fp_rate < 1:
            raise ValueError(f"fp_rate must be in (0,1), got {fp_rate}")
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.n_bits = max(8, math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self.n_hashes = max(1, round(self.n_bits / capacity * math.log(2)))
        self._hashes: List[KWiseHash] = [
            random_kwise(2, self.n_bits, rng) for _ in range(self.n_hashes)
        ]
        self._bits = bytearray((self.n_bits + 7) // 8)
        self._count = 0

    def _positions(self, key: int) -> List[int]:
        return [hash_function(key) for hash_function in self._hashes]

    def add(self, key: int) -> None:
        """Insert a key (idempotent)."""
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)
        self._count += 1

    def __contains__(self, key: int) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    def expected_fp_rate(self) -> float:
        """Current false-positive estimate from the standard formula."""
        if self._count == 0:
            return 0.0
        exponent = -self.n_hashes * self._count / self.n_bits
        return (1.0 - math.exp(exponent)) ** self.n_hashes

    def space_words(self) -> int:
        """Bit array (packed into words) plus the hash functions."""
        array_words = math.ceil(self.n_bits / 64)
        return array_words + sum(h.space_words() for h in self._hashes)


class DuplicateFilter:
    """Drop repeated (item, witness) pairs from a raw stream.

    Wraps a Bloom filter keyed on the pair's flat index.  ``admit``
    returns True exactly when the pair should be forwarded to the FEwW
    algorithm: the first arrival of a pair is admitted unless a Bloom
    false positive (probability ``fp_rate``) suppresses it; later
    arrivals are always suppressed.  Degrees seen downstream are
    therefore *under*-estimates by at most an ``fp_rate`` fraction —
    the safe direction for FEwW's promise.
    """

    def __init__(self, n: int, m: int, capacity: int, fp_rate: float,
                 rng: random.Random) -> None:
        self.n = n
        self.m = m
        self._bloom = BloomFilter(capacity, fp_rate, rng)

    def admit(self, a: int, b: int) -> bool:
        """True when the (a, b) pair is seen for the (apparent) first time."""
        if not (0 <= a < self.n and 0 <= b < self.m):
            raise ValueError(f"pair ({a}, {b}) out of range ({self.n}, {self.m})")
        key = a * self.m + b
        if key in self._bloom:
            return False
        self._bloom.add(key)
        return True

    def space_words(self) -> int:
        return self._bloom.space_words()
