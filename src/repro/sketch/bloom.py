"""Bloom filters, and a streaming duplicate filter built on them.

The paper's related work cites multi-stage Bloom filters [11] among the
classical FE toolkit; here a Bloom filter serves a substrate role: the
FEwW problem is defined on *simple* graphs, but raw application logs
(router packets, database updates) repeat (item, witness) pairs.
:class:`DuplicateFilter` turns a raw pair stream into a near-simple
edge stream in small space, at the cost of a tunable false-positive
rate (a duplicate-looking pair is dropped, so a small fraction of
genuine first arrivals is lost — which only lowers observed degrees,
never inflates them).
"""

from __future__ import annotations

import copy
import math
import random
from typing import Hashable, List, Optional

import numpy as np

from repro.sketch.hashing import KWiseHash, random_kwise


class BloomFilter:
    """Standard Bloom filter over integer keys.

    Args:
        capacity: expected number of distinct insertions.
        fp_rate: target false-positive probability at capacity.
        rng: randomness for the hash functions.
    """

    def __init__(self, capacity: int, fp_rate: float, rng: random.Random) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0 < fp_rate < 1:
            raise ValueError(f"fp_rate must be in (0,1), got {fp_rate}")
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.n_bits = max(8, math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self.n_hashes = max(1, round(self.n_bits / capacity * math.log(2)))
        self._hashes: List[KWiseHash] = [
            random_kwise(2, self.n_bits, rng) for _ in range(self.n_hashes)
        ]
        self._bits = bytearray((self.n_bits + 7) // 8)
        self._count = 0

    def _positions(self, key: int) -> List[int]:
        return [hash_function(key) for hash_function in self._hashes]

    def add(self, key: int) -> None:
        """Insert a key (idempotent)."""
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)
        self._count += 1

    def __contains__(self, key: int) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """OR-combine two same-hash filters over disjoint sub-streams.

        Valid only for filters split/copied from the same seeded
        instance (identical hash functions); the merged bit array is
        exactly the single-pass array, since bit-OR is the filter's
        native union.
        """
        if (
            not isinstance(other, BloomFilter)
            or (self.n_bits, self.n_hashes) != (other.n_bits, other.n_hashes)
            or any(
                mine.coefficients != theirs.coefficients
                for mine, theirs in zip(self._hashes, other._hashes)
            )
        ):
            raise ValueError(
                "cannot merge incompatible Bloom filters; split both from "
                "the same seeded structure"
            )
        for index, byte in enumerate(other._bits):
            self._bits[index] |= byte
        self._count += other._count
        return self

    def expected_fp_rate(self) -> float:
        """Current false-positive estimate from the standard formula."""
        if self._count == 0:
            return 0.0
        exponent = -self.n_hashes * self._count / self.n_bits
        return (1.0 - math.exp(exponent)) ** self.n_hashes

    def space_words(self) -> int:
        """Bit array (packed into words) plus the hash functions."""
        array_words = math.ceil(self.n_bits / 64)
        return array_words + sum(h.space_words() for h in self._hashes)


class DuplicateFilter:
    """Drop repeated (item, witness) pairs from a raw stream.

    Wraps a Bloom filter keyed on the pair's flat index.  ``admit``
    returns True exactly when the pair should be forwarded to the FEwW
    algorithm: the first arrival of a pair is admitted unless a Bloom
    false positive (probability ``fp_rate``) suppresses it; later
    arrivals are always suppressed.  Degrees seen downstream are
    therefore *under*-estimates by at most an ``fp_rate`` fraction —
    the safe direction for FEwW's promise.
    """

    def __init__(self, n: int, m: int, capacity: int, fp_rate: float,
                 rng: random.Random) -> None:
        self.n = n
        self.m = m
        self._bloom = BloomFilter(capacity, fp_rate, rng)

    def admit(self, a: int, b: int) -> bool:
        """True when the (a, b) pair is seen for the (apparent) first time."""
        if not (0 <= a < self.n and 0 <= b < self.m):
            raise ValueError(f"pair ({a}, {b}) out of range ({self.n}, {self.m})")
        key = a * self.m + b
        if key in self._bloom:
            return False
        self._bloom.add(key)
        return True

    def merge(self, other: "DuplicateFilter") -> "DuplicateFilter":
        """Combine two same-seed filters over disjoint pair sub-streams."""
        if not isinstance(other, DuplicateFilter) or (self.n, self.m) != (
            other.n, other.m
        ):
            raise ValueError(
                "cannot merge incompatible duplicate filters; split both "
                "from the same seeded structure"
            )
        self._bloom.merge(other._bloom)
        return self

    def space_words(self) -> int:
        return self._bloom.space_words()


class BloomDedup:
    """Engine adapter: streaming pair dedup as a pipeline processor.

    Wraps a :class:`DuplicateFilter` in the
    :class:`~repro.engine.protocol.MergeableStreamProcessor` surface:
    each ``(a, b)`` pair in a chunk is admitted on (apparent) first
    arrival and counted as a duplicate otherwise, giving a streaming
    measurement of a raw log's repetition in Bloom-filter space.  Signs
    are ignored — duplication is a property of the *pair*, not of the
    update's direction.  ``finalize`` returns the adapter itself for
    continued querying (``admitted`` / ``suppressed`` /
    :meth:`space_words`).

    ``shard_routing = "vertex"`` routes every A-vertex's pairs to one
    shard, so shard-local first-arrival decisions are exactly the
    single-pass decisions (the pair key spaces are disjoint) and merged
    counts are exact.
    """

    #: Pair keys partition by A-endpoint, keeping dedup decisions exact.
    shard_routing = "vertex"

    def __init__(
        self,
        n: int,
        m: int,
        capacity: int,
        fp_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        self.seed = seed
        self._filter = DuplicateFilter(
            n, m, capacity, fp_rate, random.Random(seed)
        )
        self.admitted = 0
        self.suppressed = 0

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        admit = self._filter.admit
        admitted = 0
        # repro: allow-scalar-loop first-arrival admission is
        # order-dependent: admit() mutates the filter per pair, so a
        # chunk cannot be collapsed without changing which duplicate
        # of a pair is the one admitted
        for pair_a, pair_b in zip(
            np.asarray(a, dtype=np.int64).tolist(),
            np.asarray(b, dtype=np.int64).tolist(),
        ):
            if admit(pair_a, pair_b):
                admitted += 1
        self.admitted += admitted
        self.suppressed += len(a) - admitted

    def finalize(self) -> "BloomDedup":
        return self

    def split(self, n_shards: int) -> List["BloomDedup"]:
        """``n_shards`` same-seed empty shard filters (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self.admitted or self.suppressed:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def merge(self, other: "BloomDedup") -> "BloomDedup":
        self._filter.merge(other._filter)
        self.admitted += other.admitted
        self.suppressed += other.suppressed
        return self

    def space_words(self) -> int:
        return self._filter.space_words()
