"""k-wise independent hash families over a Mersenne-prime field.

A degree-(k-1) polynomial with uniform random coefficients over
GF(p) evaluated at distinct points is a k-wise independent family — the
textbook construction, sufficient for every sketch in this library.
We use the Mersenne prime ``p = 2**61 - 1`` so all arithmetic fits in
Python integers comfortably and the modular reduction is cheap.
"""

from __future__ import annotations

import random
from typing import List, Sequence

#: Mersenne prime 2^61 - 1 used as the field size for all hash families.
PRIME_61 = (1 << 61) - 1


class KWiseHash:
    """A member of a k-wise independent hash family ``[p] -> [range_size]``.

    Evaluates ``h(x) = (poly(x) mod p) mod range_size`` where ``poly`` has
    ``k`` uniformly random coefficients.  The modular bucketing introduces
    the usual negligible bias for ``range_size << p``.

    Args:
        coefficients: the ``k`` polynomial coefficients, constant term
            last; all must lie in ``[0, p)``.
        range_size: size of the output range.
    """

    __slots__ = ("coefficients", "range_size")

    def __init__(self, coefficients: Sequence[int], range_size: int) -> None:
        if not coefficients:
            raise ValueError("need at least one coefficient")
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        for coefficient in coefficients:
            if not 0 <= coefficient < PRIME_61:
                raise ValueError(f"coefficient {coefficient} out of field range")
        self.coefficients: List[int] = list(coefficients)
        self.range_size = range_size

    @property
    def independence(self) -> int:
        """The k of the k-wise family (number of coefficients)."""
        return len(self.coefficients)

    def __call__(self, x: int) -> int:
        value = 0
        for coefficient in self.coefficients:
            value = (value * x + coefficient) % PRIME_61
        return value % self.range_size

    def field_value(self, x: int) -> int:
        """Raw polynomial value in GF(p) before bucketing (for fingerprints)."""
        value = 0
        for coefficient in self.coefficients:
            value = (value * x + coefficient) % PRIME_61
        return value

    def space_words(self) -> int:
        """One word per coefficient plus the range size."""
        return len(self.coefficients) + 1


def random_kwise(k: int, range_size: int, rng: random.Random) -> KWiseHash:
    """Draw a uniformly random member of the k-wise family.

    The leading coefficient is drawn from ``[1, p)`` so the polynomial
    has true degree ``k - 1`` (for ``k >= 2``); this does not affect the
    independence guarantee and avoids degenerate constant hashes.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k == 1:
        coefficients = [rng.randrange(PRIME_61)]
    else:
        coefficients = [rng.randrange(1, PRIME_61)]
        coefficients.extend(rng.randrange(PRIME_61) for _ in range(k - 1))
    return KWiseHash(coefficients, range_size)
