"""k-wise independent hash families over a Mersenne-prime field.

A degree-(k-1) polynomial with uniform random coefficients over
GF(p) evaluated at distinct points is a k-wise independent family — the
textbook construction, sufficient for every sketch in this library.
We use the Mersenne prime ``p = 2**61 - 1`` so all arithmetic fits in
Python integers comfortably and the modular reduction is cheap.

For the columnar batch engine the same polynomials are evaluated over
whole NumPy arrays at once (:meth:`KWiseHash.batch`).  Products of two
61-bit field elements need 122 bits, so the vectorized path splits each
operand into 31-bit limbs and folds the partial products with the
Mersenne identity ``2**61 ≡ 1 (mod p)``; every intermediate fits in
``uint64``.  The batch path is exact: it returns bit-identical values to
:meth:`KWiseHash.__call__` on every input.
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

#: Mersenne prime 2^61 - 1 used as the field size for all hash families.
PRIME_61 = (1 << 61) - 1

_MASK61 = np.uint64(PRIME_61)
_SHIFT61 = np.uint64(61)
_SHIFT31 = np.uint64(31)
_SHIFT30 = np.uint64(30)
_MASK31 = np.uint64((1 << 31) - 1)
_MASK30 = np.uint64((1 << 30) - 1)
_ONE = np.uint64(1)


def _fold61(x: np.ndarray) -> np.ndarray:
    """Reduce ``uint64`` values modulo ``2**61 - 1`` (result in ``[0, p)``)."""
    x = (x & _MASK61) + (x >> _SHIFT61)
    x = (x & _MASK61) + (x >> _SHIFT61)
    return np.where(x == _MASK61, np.uint64(0), x)


def mulmod_p61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``a * b mod (2**61 - 1)`` for arrays with values in ``[0, p)``.

    Splits both operands into 31-bit limbs so every partial product fits
    in ``uint64``: with ``a = a1·2³¹ + a0`` and ``b = b1·2³¹ + b0``,

    ``a·b = a1·b1·2⁶² + (a1·b0 + a0·b1)·2³¹ + a0·b0``

    and each term is folded with ``2⁶¹ ≡ 1 (mod p)``.
    """
    a1, a0 = a >> _SHIFT31, a & _MASK31
    b1, b0 = b >> _SHIFT31, b & _MASK31
    hi = a1 * b1                      # < 2^60; times 2^62 ≡ times 2 (mod p)
    mid = a1 * b0 + a0 * b1           # < 2^62
    mid_term = (mid >> _SHIFT30) + ((mid & _MASK30) << _SHIFT31)
    return _fold61(_fold61(hi << _ONE) + _fold61(mid_term) + _fold61(a0 * b0))


def powmod_p61(base: np.ndarray, exponent: np.ndarray) -> np.ndarray:
    """Element-wise ``base ** exponent mod (2**61 - 1)`` via binary exponentiation.

    Broadcasts like a normal ufunc and returns bit-identical values to
    ``pow(int(b), int(e), PRIME_61)`` for every element (including
    ``e == 0`` which yields 1).  Runs ``bit_length(max(exponent))``
    rounds of :func:`mulmod_p61`, so the cost is logarithmic in the
    largest exponent, shared across the whole array.
    """
    base = np.asarray(base, dtype=np.uint64)
    exponent = np.asarray(exponent, dtype=np.uint64)
    base, exponent = np.broadcast_arrays(base, exponent)
    base = _fold61(base.copy())
    result = np.ones(base.shape, dtype=np.uint64)
    n_bits = int(exponent.max()).bit_length() if exponent.size else 0
    for bit in range(n_bits):
        take = ((exponent >> np.uint64(bit)) & _ONE) == _ONE
        result = np.where(take, mulmod_p61(result, base), result)
        if bit + 1 < n_bits:
            base = mulmod_p61(base, base)
    return result


class KWiseHash:
    """A member of a k-wise independent hash family ``[p] -> [range_size]``.

    Evaluates ``h(x) = (poly(x) mod p) mod range_size`` where ``poly`` has
    ``k`` uniformly random coefficients.  The modular bucketing introduces
    the usual negligible bias for ``range_size << p``.

    Args:
        coefficients: the ``k`` polynomial coefficients, constant term
            last; all must lie in ``[0, p)``.
        range_size: size of the output range.
    """

    __slots__ = ("coefficients", "range_size")

    def __init__(self, coefficients: Sequence[int], range_size: int) -> None:
        if not coefficients:
            raise ValueError("need at least one coefficient")
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        for coefficient in coefficients:
            if not 0 <= coefficient < PRIME_61:
                raise ValueError(f"coefficient {coefficient} out of field range")
        self.coefficients: List[int] = list(coefficients)
        self.range_size = range_size

    @property
    def independence(self) -> int:
        """The k of the k-wise family (number of coefficients)."""
        return len(self.coefficients)

    def __call__(self, x: int) -> int:
        value = 0
        for coefficient in self.coefficients:
            value = (value * x + coefficient) % PRIME_61
        return value % self.range_size

    def field_value(self, x: int) -> int:
        """Raw polynomial value in GF(p) before bucketing (for fingerprints)."""
        value = 0
        for coefficient in self.coefficients:
            value = (value * x + coefficient) % PRIME_61
        return value

    def field_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`field_value` over an integer array (``uint64``)."""
        xs = _fold61(np.asarray(xs, dtype=np.uint64))
        # Horner's first round multiplies zero — start from the leading
        # coefficient instead (bit-identical, one round cheaper).
        if len(self.coefficients) == 1:
            return np.full(xs.shape, np.uint64(self.coefficients[0]))
        values = np.broadcast_to(np.uint64(self.coefficients[0]), xs.shape)
        for coefficient in self.coefficients[1:]:
            values = _fold61(mulmod_p61(values, xs) + np.uint64(coefficient))
        return values

    def batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__`: bucket values as an ``int64`` array.

        Bit-identical to evaluating the scalar hash on every element; used
        by the ``process_batch`` paths of every sketch.
        """
        return (self.field_batch(xs) % np.uint64(self.range_size)).astype(np.int64)

    def space_words(self) -> int:
        """One word per coefficient plus the range size."""
        return len(self.coefficients) + 1


class KWiseHashStack:
    """Fused evaluation of several :class:`KWiseHash` members at once.

    Stacks the coefficient vectors of ``rows`` same-independence hashes
    into one ``(rows, k)`` matrix so a whole bank of hashes is evaluated
    over a chunk with a single broadcast Horner pass — one
    ``rows x chunk`` matrix of modular arithmetic instead of ``rows``
    separate passes.  Row ``i`` of :meth:`batch_rows` is bit-identical
    to ``hashes[i].batch(xs)`` (the limb arithmetic is element-wise, so
    broadcasting cannot change any value).

    The stacked hashes may use different ``range_size`` values (the
    bucketing modulus is applied per row), which lets CountSketch fuse
    its bucket and ±1 sign hashes into one evaluation.
    """

    __slots__ = ("hashes", "_coefficients", "_ranges")

    def __init__(self, hashes: Sequence[KWiseHash]) -> None:
        hashes = list(hashes)
        if not hashes:
            raise ValueError("need at least one hash to stack")
        independence = hashes[0].independence
        for hash_function in hashes:
            if hash_function.independence != independence:
                raise ValueError(
                    "all stacked hashes must share the same independence; "
                    f"got {hash_function.independence} and {independence}"
                )
        self.hashes: List[KWiseHash] = hashes
        self._coefficients = np.array(
            [hash_function.coefficients for hash_function in hashes],
            dtype=np.uint64,
        )
        self._ranges = np.array(
            [[hash_function.range_size] for hash_function in hashes],
            dtype=np.uint64,
        )

    @property
    def rows(self) -> int:
        """Number of stacked hash functions."""
        return len(self.hashes)

    def field_batch_rows(self, xs: np.ndarray) -> np.ndarray:
        """All raw polynomial values as a ``(rows, len(xs))`` ``uint64`` array."""
        xs = _fold61(np.asarray(xs, dtype=np.uint64))[np.newaxis, :]
        # Start Horner from the leading coefficients (bit-identical to a
        # zero-initialised first round, one round cheaper).
        if self._coefficients.shape[1] == 1:
            return np.broadcast_to(
                self._coefficients[:, 0:1], (len(self.hashes), xs.shape[1])
            ).copy()
        values: np.ndarray = self._coefficients[:, 0:1]
        for j in range(1, self._coefficients.shape[1]):
            values = _fold61(mulmod_p61(values, xs) + self._coefficients[:, j : j + 1])
        return values

    def batch_rows(self, xs: np.ndarray) -> np.ndarray:
        """All bucket values as a ``(rows, len(xs))`` ``int64`` array.

        ``batch_rows(xs)[i]`` is bit-identical to ``hashes[i].batch(xs)``.
        """
        return (self.field_batch_rows(xs) % self._ranges).astype(np.int64)


def random_kwise(k: int, range_size: int, rng: random.Random) -> KWiseHash:
    """Draw a uniformly random member of the k-wise family.

    The leading coefficient is drawn from ``[1, p)`` so the polynomial
    has true degree ``k - 1`` (for ``k >= 2``); this does not affect the
    independence guarantee and avoids degenerate constant hashes.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k == 1:
        coefficients = [rng.randrange(PRIME_61)]
    else:
        coefficients = [rng.randrange(1, PRIME_61)]
        coefficients.extend(rng.randrange(PRIME_61) for _ in range(k - 1))
    return KWiseHash(coefficients, range_size)
