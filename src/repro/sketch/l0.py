"""ℓ₀-samplers: uniform sampling from the support of a signed vector.

An ℓ₀-sampler processes a stream of signed coordinate updates to an
implicit vector of dimension ``dim`` and, at query time, outputs a
(near-)uniform member of the final support — correct even when updates
cancel.  The paper's insertion-deletion algorithm (Algorithm 3) consumes
these as a black box, citing Jowhari–Sağlam–Tardos [26] for the bound
``O(log²(dim) · log(1/δ))`` bits per sampler.

:class:`L0Sampler` is the real structure: nested geometric subsampling
levels, an s-sparse recovery per level, and a min-hash tiebreak so that
the returned coordinate is uniform over the support.  All ``n_levels``
recoveries share one sparsity/row geometry, so their accumulator planes
are stacked into single 3-D ``(n_levels, n_rows, n_buckets)`` arrays and
a batch is absorbed with ONE scatter-add per plane across every level
(level membership is nested, so each level's surviving subset is a
prefix-filtered view of the previous one).  ``decode``/``merge``/
``split`` rebuild per-level :class:`SSparseRecovery` views over the
stacked planes; the state is bit-identical to a list of independent
per-level structures fed the same stream.

:class:`L0SamplerBank` manages the many independent samplers Algorithm 3
needs.  It has two modes:

* ``"exact"`` — every sampler is a real :class:`L0Sampler`; updates fan
  out to each of them.  The bank stacks all samplers' level hashes into
  one :class:`~repro.sketch.hashing.KWiseHashStack` so a chunk's level
  assignment for every sampler is one fused evaluation.
* ``"fast"`` — the bank tracks the exact support once (simulator state,
  not charged) and at query time draws each sampler's output uniformly
  from the support with an independent seeded RNG.  Distributionally
  this matches a bank of ideal ℓ₀-samplers; space is *accounted* with
  the paper's formula via :func:`l0_sampler_space_words`.  This keeps
  Algorithm 3 runnable at benchmark sizes in pure Python.  The
  equivalence of the two modes is property-tested in
  ``tests/sketch/test_l0.py``.
"""

from __future__ import annotations

import copy
import math
import random
from typing import List, Optional

import numpy as np

from repro.sketch.exact import ExactSupport
from repro.sketch.hashing import (
    PRIME_61,
    KWiseHash,
    KWiseHashStack,
    _fold61,
    mulmod_p61,
    powmod_p61,
    random_kwise,
)
from repro.sketch.ssparse import (
    POWER_TABLE_MAX_ENTRIES,
    _WINDOW_BITS,
    _WINDOW_MASK,
    SSparseRecovery,
    build_power_tables,
    power_table_windows,
    scatter_cell_updates,
)


def l0_sampler_space_words(dim: int, delta: float) -> int:
    """Paper-accounted words for one ℓ₀-sampler.

    Jowhari et al. give ``O(log²(dim) · log(1/δ))`` bits; we account
    ``ceil(log2(dim))² · ceil(log2(1/δ))`` bits rounded up to words,
    with constant 1 (the comparisons in the benchmarks are about shape,
    not constants).
    """
    if dim <= 1:
        log_dim = 1
    else:
        log_dim = math.ceil(math.log2(dim))
    log_delta = max(1, math.ceil(math.log2(1.0 / delta)))
    bits = log_dim * log_dim * log_delta
    return max(1, math.ceil(bits / 64))


class L0Sampler:
    """A single ℓ₀-sampler over vectors of dimension ``dim``.

    Args:
        dim: vector dimension.
        delta: failure probability target; drives the per-level sparse
            recovery size.
    """

    def __init__(self, dim: int, delta: float, rng: random.Random) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        self.dim = dim
        self.delta = delta
        self.n_levels = max(1, math.ceil(math.log2(dim)) + 1)
        sparsity = max(2, math.ceil(math.log2(2.0 / delta)))
        self._level_hash: KWiseHash = random_kwise(2, 1 << self.n_levels, rng)
        self._tiebreak: KWiseHash = random_kwise(2, 1 << 61, rng)
        # Construct real per-level recoveries first so the RNG draw order
        # is identical to a list of independent structures, then stack
        # their accumulator planes into the sampler-owned 3-D arrays.
        recoveries = [
            SSparseRecovery(dim, sparsity, delta / (2 * self.n_levels), rng)
            for _ in range(self.n_levels)
        ]
        template = recoveries[0]
        self._sparsity = template.s
        self._recovery_delta = template.delta
        self._n_rows = template.n_rows
        self._n_buckets = template.n_buckets
        self._row_hashes: List[List[KWiseHash]] = [r._hashes for r in recoveries]
        self._row_stacks: List[KWiseHashStack] = [r._stack for r in recoveries]
        self._r = np.stack([r._r for r in recoveries])
        self._weight = np.stack([r._weight for r in recoveries])
        self._dot = np.stack([r._dot for r in recoveries])
        self._fingerprint = np.stack([r._fingerprint for r in recoveries])
        # Row-hash coefficients stacked as (n_levels, n_rows) matrices so
        # the fused batch path evaluates every (level, row) bucket with
        # one broadcast Horner step (all row hashes are pairwise
        # independent, i.e. degree-1 polynomials).
        self._row_a = np.array(
            [[h.coefficients[0] for h in hashes] for hashes in self._row_hashes],
            dtype=np.uint64,
        )
        self._row_b = np.array(
            [[h.coefficients[1] for h in hashes] for hashes in self._row_hashes],
            dtype=np.uint64,
        )
        # Lazily-built windowed fingerprint power tables, stacked over
        # all levels (pure cache derived from _r; not charged).
        self._power_tables: Optional[np.ndarray] = None

    def _ensure_power_tables(self) -> Optional[np.ndarray]:
        """Build the stacked ``(windows, 256, L, R, B)`` tables when small."""
        if self._power_tables is None:
            entries = (
                power_table_windows(self.dim) * 256 * self._r.size
            )
            if entries <= POWER_TABLE_MAX_ENTRIES:
                self._power_tables = build_power_tables(self._r, self.dim)
        return self._power_tables

    def _recovery(self, level: int) -> SSparseRecovery:
        """A view-backed :class:`SSparseRecovery` over one level's planes.

        The views write through to the stacked arrays, so scalar updates,
        decoding and merging through the view mutate the sampler state.
        Views are transient — never stored — so ``deepcopy`` of the
        sampler only ever copies the stacked planes.
        """
        recovery = SSparseRecovery.__new__(SSparseRecovery)
        recovery.dim = self.dim
        recovery.s = self._sparsity
        recovery.delta = self._recovery_delta
        recovery.n_buckets = self._n_buckets
        recovery.n_rows = self._n_rows
        recovery._hashes = self._row_hashes[level]
        recovery._stack = self._row_stacks[level]
        recovery._r = self._r[level]
        recovery._weight = self._weight[level]
        recovery._dot = self._dot[level]
        recovery._fingerprint = self._fingerprint[level]
        recovery._power_tables = (
            None if self._power_tables is None else self._power_tables[:, :, level]
        )
        return recovery

    @property
    def _recoveries(self) -> List[SSparseRecovery]:
        """Per-level recovery views (see :meth:`_recovery`)."""
        return [self._recovery(level) for level in range(self.n_levels)]

    def _level_of(self, index: int) -> int:
        """Deepest level at which ``index`` survives nested subsampling.

        Index survives level ``l`` iff the low ``l`` bits of its level
        hash are zero, so survival probabilities are 1, 1/2, 1/4, ...
        and levels are nested.
        """
        value = self._level_hash(index)
        level = 0
        while level + 1 < self.n_levels and value % (1 << (level + 1)) == 0:
            level += 1
        return level

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``."""
        deepest = self._level_of(index)
        for level in range(deepest + 1):
            self._recovery(level).update(index, delta)

    def _levels_of_batch(self, indices: np.ndarray) -> np.ndarray:
        """Deepest surviving level for every index, vectorized."""
        values = self._level_hash.batch(indices)
        levels = np.zeros(len(indices), dtype=np.int64)
        for level in range(1, self.n_levels):
            survives = (levels == level - 1) & (values % (1 << level) == 0)
            levels[survives] = level
        return levels

    def update_batch(
        self,
        indices: np.ndarray,
        deltas: np.ndarray,
        *,
        levels: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a batch of signed updates.

        The level of every index is computed with one vectorized hash
        evaluation (or taken from ``levels`` when a bank already fused
        that pass across samplers).  An index surviving to level ``l``
        updates levels ``0..l``, so the batch expands into flat
        ``(item, level)`` entries; every entry's bucket, fingerprint
        power and cell address are computed with broadcast passes over
        the stacked planes and ALL levels are absorbed with one exact
        scatter per accumulator plane — no Python loop over levels or
        recovery objects.  Final state matches item-by-item updates
        exactly — the sketch is linear.
        """
        if len(indices) == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.dim:
            bad = indices[(indices < 0) | (indices >= self.dim)][0]
            raise ValueError(f"index {int(bad)} out of range [0, {self.dim})")
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if levels is None:
            levels = self._levels_of_batch(indices)
        power_tables = self._ensure_power_tables()
        # Expand to one entry per (item, level <= deepest(item)).  Entry
        # e carries item index x[e], delta d[e] and level lab[e].
        counts = levels + 1
        starts = np.cumsum(counts) - counts
        n_entries = int(counts[-1] + starts[-1])
        x = np.repeat(indices, counts)
        lab = np.arange(n_entries, dtype=np.int64) - np.repeat(starts, counts)
        d = np.repeat(deltas, counts)
        rows = np.arange(self._n_rows, dtype=np.int64)[np.newaxis, :]
        # Degree-1 Horner with per-entry coefficients — bit-identical to
        # each level's KWiseHash on its surviving subset.
        field = _fold61(
            mulmod_p61(self._row_a[lab], _fold61(x.astype(np.uint64))[:, np.newaxis])
            + self._row_b[lab]
        )
        buckets = (field % np.uint64(self._n_buckets)).astype(np.int64)
        addr = (lab[:, np.newaxis] * self._n_rows + rows) * self._n_buckets + buckets
        if power_tables is not None:
            powers = power_tables[
                0, (x & _WINDOW_MASK)[:, np.newaxis], lab[:, np.newaxis], rows, buckets
            ]
            for window in range(1, power_tables.shape[0]):
                window_values = (x >> np.int64(window * _WINDOW_BITS)) & _WINDOW_MASK
                powers = mulmod_p61(
                    powers,
                    power_tables[
                        window,
                        window_values[:, np.newaxis],
                        lab[:, np.newaxis],
                        rows,
                        buckets,
                    ],
                )
        else:
            powers = powmod_p61(
                self._r[lab[:, np.newaxis], rows, buckets],
                x.astype(np.uint64)[:, np.newaxis],
            )
        # delta = ±1 covers edge streams: ±r^i mod p needs no multiply
        # (powers lie in [1, p), so p - powers is the exact negation).
        magnitudes = np.abs(d)
        if magnitudes.max() == 1 and magnitudes.min() == 1:
            contrib = np.where(
                (d > 0)[:, np.newaxis],
                powers,
                np.uint64(PRIME_61) - powers,
            )
        else:
            contrib = mulmod_p61(
                powers, np.remainder(d, PRIME_61).astype(np.uint64)[:, np.newaxis]
            )
        shape = addr.shape
        scatter_cell_updates(
            self._weight.reshape(-1),
            self._dot.reshape(-1),
            self._fingerprint.reshape(-1),
            addr.ravel(),
            np.broadcast_to(d[:, np.newaxis], shape).ravel(),
            np.broadcast_to((x * d)[:, np.newaxis], shape).ravel(),
            contrib.ravel(),
        )

    def merge(self, other: "L0Sampler") -> "L0Sampler":
        """Level-wise merge of two samplers over disjoint sub-streams.

        Valid only for samplers split from the same seeded instance
        (identical level/tiebreak hashes); all levels are linear
        sketches, so the merged sampler equals the single-pass sampler
        exactly.
        """
        if (
            not isinstance(other, L0Sampler)
            or (self.dim, self.n_levels) != (other.dim, other.n_levels)
            or self._level_hash.coefficients != other._level_hash.coefficients
            or self._tiebreak.coefficients != other._tiebreak.coefficients
        ):
            raise ValueError(
                "cannot merge incompatible l0-samplers; split both from the "
                "same seeded structure"
            )
        for mine, theirs in zip(self._row_hashes, other._row_hashes):
            for my_hash, their_hash in zip(mine, theirs):
                if my_hash.coefficients != their_hash.coefficients:
                    raise ValueError(
                        "cannot merge s-sparse recoveries with different row "
                        "hashes; split both from the same seeded structure"
                    )
        if not np.array_equal(self._r, other._r):
            raise ValueError(
                "cannot merge 1-sparse cells with different dimensions or "
                "fingerprint bases; split both from the same seeded structure"
            )
        self._weight += other._weight
        self._dot += other._dot
        self._fingerprint = _fold61(self._fingerprint + other._fingerprint)
        return self

    def sample(self) -> Optional[int]:
        """Return a near-uniform support coordinate, or None on failure.

        Scans levels from deepest to shallowest; at the first level whose
        recovery decodes to a non-empty set, returns the coordinate with
        the smallest tiebreak hash.  Returns None when every level fails
        or the vector is empty.
        """
        for level in range(self.n_levels - 1, -1, -1):
            decoded = self._recovery(level).decode()
            if decoded is None:
                continue
            if decoded:
                return min(decoded, key=self._tiebreak)
        return None

    def space_words(self) -> int:
        """Actual words retained: recoveries plus the two hashes."""
        return (
            sum(self._recovery(level).space_words() for level in range(self.n_levels))
            + self._level_hash.space_words()
            + self._tiebreak.space_words()
        )


class L0SamplerBank:
    """A bank of ``count`` independent ℓ₀-samplers over one vector.

    Args:
        dim: vector dimension shared by all samplers.
        count: number of samplers.
        delta: per-sampler failure probability.
        rng: randomness source.
        mode: ``"exact"`` (real sketches) or ``"fast"`` (support-tracking
            simulation with analytically accounted space — see module
            docstring).
    """

    MODES = ("exact", "fast")

    def __init__(
        self,
        dim: int,
        count: int,
        delta: float,
        rng: random.Random,
        mode: str = "fast",
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.dim = dim
        self.count = count
        self.delta = delta
        self.mode = mode
        if mode == "exact":
            self._samplers: List[L0Sampler] = [
                L0Sampler(dim, delta, rng) for _ in range(count)
            ]
            # One fused evaluation assigns a chunk's subsampling levels
            # for every sampler at once (all share one n_levels).
            self._level_stack: Optional[KWiseHashStack] = (
                KWiseHashStack([sampler._level_hash for sampler in self._samplers])
                if self._samplers
                else None
            )
            self._support: Optional[ExactSupport] = None
            self._draw_rng: Optional[random.Random] = None
        else:
            self._samplers = []
            self._level_stack = None
            self._support = ExactSupport(dim)
            self._draw_rng = random.Random(rng.getrandbits(64))

    def update(self, index: int, delta: int) -> None:
        """Fan ``vector[index] += delta`` out to every sampler."""
        if self.mode == "exact":
            for sampler in self._samplers:
                sampler.update(index, delta)
        else:
            assert self._support is not None
            self._support.update(index, delta)

    def update_batch(
        self,
        indices: np.ndarray,
        deltas: np.ndarray,
        netted: bool = False,
    ) -> None:
        """Fan a batch of signed updates out to every sampler.

        Every sampler is a linear sketch (and the fast-mode support
        tracker a plain sum), so collapsing a chunk's repeated or
        cancelling updates changes nothing about the final state.  Fast
        mode defers everything to the support tracker's buffered batch
        path; exact mode nets per coordinate before fanning out, unless
        the caller already did (``netted=True`` promises ``indices`` are
        unique with per-coordinate net ``deltas`` — Algorithm 3 nets a
        whole chunk for all its banks in one pass).  The exact fan-out
        computes every sampler's level assignment with one stacked hash
        evaluation before each sampler's fused scatter.
        """
        if len(indices) == 0:
            return
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if self.mode == "fast":
            assert self._support is not None
            self._support.update_batch(indices, deltas)
            return
        if netted:
            unique, net = indices, np.asarray(deltas, dtype=np.int64)
        else:
            unique, inverse = np.unique(indices, return_inverse=True)
            net = np.zeros(len(unique), dtype=np.int64)
            np.add.at(net, inverse, deltas)
            live = net != 0
            if not live.any():
                return
            unique, net = unique[live], net[live]
        if not self._samplers:
            return
        assert self._level_stack is not None
        values = self._level_stack.batch_rows(unique)
        levels = np.zeros(values.shape, dtype=np.int64)
        for level in range(1, self._samplers[0].n_levels):
            survives = (levels == level - 1) & (values % (1 << level) == 0)
            levels[survives] = level
        for sampler, sampler_levels in zip(self._samplers, levels):
            sampler.update_batch(unique, net, levels=sampler_levels)

    def merge(self, other: "L0SamplerBank") -> "L0SamplerBank":
        """Merge two banks over disjoint sub-streams of one vector.

        Exact mode merges the underlying linear sketches sampler by
        sampler; fast mode merges the tracked supports (the draw RNG of
        ``self`` is retained, so a bank reassembled from same-seed shards
        answers :meth:`sample_all` bit-identically to a single-pass
        bank).
        """
        if not isinstance(other, L0SamplerBank):
            raise ValueError(
                f"cannot merge L0SamplerBank with {type(other).__name__}"
            )
        if (self.dim, self.count, self.mode) != (other.dim, other.count, other.mode):
            raise ValueError(
                f"cannot merge bank (dim={self.dim}, count={self.count}, "
                f"mode={self.mode}) with bank (dim={other.dim}, "
                f"count={other.count}, mode={other.mode})"
            )
        if self.mode == "exact":
            for mine, theirs in zip(self._samplers, other._samplers):
                mine.merge(theirs)
        else:
            assert self._support is not None and other._support is not None
            self._support.merge(other._support)
        return self

    def sample_all(self) -> List[Optional[int]]:
        """Query every sampler; entries are None on (simulated) failure."""
        if self.mode == "exact":
            return [sampler.sample() for sampler in self._samplers]
        assert self._support is not None and self._draw_rng is not None
        support = self._support.support()
        if not support:
            return [None] * self.count
        results: List[Optional[int]] = []
        for _ in range(self.count):
            if self._draw_rng.random() < self.delta:
                results.append(None)
            else:
                results.append(self._draw_rng.choice(support))
        return results

    def space_words(self) -> int:
        """Exact mode: sum of real structure sizes.  Fast mode: paper formula."""
        if self.mode == "exact":
            return sum(sampler.space_words() for sampler in self._samplers)
        return self.count * l0_sampler_space_words(self.dim, self.delta)


class L0EdgeBank:
    """Engine adapter: an :class:`L0SamplerBank` over the edge vector.

    Presents the bank as a pipeline-registrable
    :class:`~repro.engine.protocol.MergeableStreamProcessor`: each
    ``(a, b, sign)`` update becomes a signed update to coordinate
    ``a * m + b`` of the implicit n×m edge-incidence vector — exactly
    the vector Algorithm 3's samplers observe.  ``finalize`` returns
    the adapter itself, so callers keep querying (:meth:`sample_all`,
    :meth:`space_words`) after the run, like the other query-style
    summaries.

    Every sampler is a linear sketch (and the fast mode's support
    tracker a plain sum), so updates may be partitioned arbitrarily
    across shards (``shard_routing = "any"``); a bank reassembled from
    same-seed shards answers :meth:`sample_all` bit-identically to a
    single-pass bank.
    """

    #: Linear sketches merge under any stream partition.
    shard_routing = "any"

    def __init__(
        self,
        n: int,
        m: int,
        count: int,
        delta: float = 0.05,
        seed: int = 0,
        mode: str = "fast",
    ) -> None:
        if n < 1 or m < 1:
            raise ValueError(f"n and m must be >= 1, got n={n}, m={m}")
        self.n = n
        self.m = m
        self.seed = seed
        self._started = False
        self._bank = L0SamplerBank(
            n * m, count, delta, random.Random(seed), mode=mode
        )

    def process_item(self, item) -> None:
        """Apply one signed edge update (the engine's per-item path)."""
        self._started = True
        self._bank.update(item.edge.flat_index(self.m), item.sign)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        if len(a) == 0:
            return
        self._started = True
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.min() < 0 or a.max() >= self.n or b.min() < 0 or b.max() >= self.m:
            raise ValueError(
                f"edge endpoints out of range ({self.n}, {self.m})"
            )
        # Deferred import: sketch is a lower layer than streams and
        # must not depend on it at module-import time.
        from repro.streams.edge import insert_signs

        indices = a * np.int64(self.m) + b
        deltas = (
            insert_signs(len(a))
            if sign is None
            else np.asarray(sign, dtype=np.int64)
        )
        self._bank.update_batch(indices, deltas)

    def finalize(self) -> "L0EdgeBank":
        return self

    def split(self, n_shards: int) -> List["L0EdgeBank"]:
        """``n_shards`` same-seed empty shard banks (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._started:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def merge(self, other: "L0EdgeBank") -> "L0EdgeBank":
        if not isinstance(other, L0EdgeBank) or (self.n, self.m) != (
            other.n, other.m
        ):
            raise ValueError(
                "cannot merge incompatible l0 edge banks; split both from "
                "the same seeded structure"
            )
        self._bank.merge(other._bank)
        self._started = self._started or other._started
        return self

    def sample_all(self) -> List[Optional[int]]:
        """Every sampler's flat edge index (``a * m + b``), None on failure."""
        return self._bank.sample_all()

    def sample_edges(self) -> List[Optional[tuple]]:
        """Every sampler's sampled edge as an ``(a, b)`` pair."""
        return [
            None if index is None else (int(index // self.m), int(index % self.m))
            for index in self._bank.sample_all()
        ]

    def space_words(self) -> int:
        return self._bank.space_words()
