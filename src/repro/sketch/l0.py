"""ℓ₀-samplers: uniform sampling from the support of a signed vector.

An ℓ₀-sampler processes a stream of signed coordinate updates to an
implicit vector of dimension ``dim`` and, at query time, outputs a
(near-)uniform member of the final support — correct even when updates
cancel.  The paper's insertion-deletion algorithm (Algorithm 3) consumes
these as a black box, citing Jowhari–Sağlam–Tardos [26] for the bound
``O(log²(dim) · log(1/δ))`` bits per sampler.

:class:`L0Sampler` is the real structure: nested geometric subsampling
levels, an s-sparse recovery per level, and a min-hash tiebreak so that
the returned coordinate is uniform over the support.  All ``n_levels``
recoveries share one sparsity/row geometry, so their accumulator planes
are stacked into single 3-D ``(n_levels, n_rows, n_buckets)`` arrays and
a batch is absorbed with ONE scatter-add per plane across every level
(level membership is nested, so each level's surviving subset is a
prefix-filtered view of the previous one).  ``decode``/``merge``/
``split`` rebuild per-level :class:`SSparseRecovery` views over the
stacked planes; the state is bit-identical to a list of independent
per-level structures fed the same stream.

:class:`L0SamplerBank` manages the many independent samplers Algorithm 3
needs.  It has two modes:

* ``"exact"`` — every sampler is a real :class:`L0Sampler`; updates fan
  out to each of them.  The bank stacks all samplers' level hashes into
  one :class:`~repro.sketch.hashing.KWiseHashStack` so a chunk's level
  assignment for every sampler is one fused evaluation.
* ``"fast"`` — the bank tracks the exact support once (simulator state,
  not charged) and at query time draws each sampler's output uniformly
  from the support with an independent seeded RNG.  Distributionally
  this matches a bank of ideal ℓ₀-samplers; space is *accounted* with
  the paper's formula via :func:`l0_sampler_space_words`.  This keeps
  Algorithm 3 runnable at benchmark sizes in pure Python.  The
  equivalence of the two modes is property-tested in
  ``tests/sketch/test_l0.py``.
"""

from __future__ import annotations

import copy
import math
import random
from typing import List, Optional, Tuple

import numpy as np

from repro.sketch.exact import ExactSupport
from repro.sketch.hashing import (
    PRIME_61,
    KWiseHash,
    KWiseHashStack,
    _fold61,
    mulmod_p61,
    powmod_p61,
    random_kwise,
)
from repro.sketch.ssparse import (
    POWER_TABLE_MAX_ENTRIES,
    _WINDOW_BITS,
    _WINDOW_MASK,
    SSparseRecovery,
    build_power_tables,
    power_table_windows,
    scatter_cell_updates,
)


#: Exact-mode banks buffer update columns and consolidate them with one
#: fused bank-wide kernel pass once this many coordinates are pending
#: (or at the next query/merge/pickle).  Mirrors ExactSupport's deferred
#: netting: linearity makes the final state independent of when the
#: buffered updates land.
_BANK_FLUSH_PENDING = 1 << 18
#: Netted coordinates are absorbed in slices of this size so the fused
#: kernel's expanded (sampler, item, level) entry arrays stay small.
_BANK_COORD_CHUNK = 1 << 16
#: Entry-axis slice size inside one fused pass — bounds the transient
#: (entries, n_rows) matrices to a few MB.
_BANK_ENTRY_CHUNK = 1 << 16


def l0_sampler_space_words(dim: int, delta: float) -> int:
    """Paper-accounted words for one ℓ₀-sampler.

    Jowhari et al. give ``O(log²(dim) · log(1/δ))`` bits; we account
    ``ceil(log2(dim))² · ceil(log2(1/δ))`` bits rounded up to words,
    with constant 1 (the comparisons in the benchmarks are about shape,
    not constants).
    """
    if dim <= 1:
        log_dim = 1
    else:
        log_dim = math.ceil(math.log2(dim))
    log_delta = max(1, math.ceil(math.log2(1.0 / delta)))
    bits = log_dim * log_dim * log_delta
    return max(1, math.ceil(bits / 64))


class L0Sampler:
    """A single ℓ₀-sampler over vectors of dimension ``dim``.

    Args:
        dim: vector dimension.
        delta: failure probability target; drives the per-level sparse
            recovery size.
    """

    def __init__(self, dim: int, delta: float, rng: random.Random) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        self.dim = dim
        self.delta = delta
        self.n_levels = max(1, math.ceil(math.log2(dim)) + 1)
        sparsity = max(2, math.ceil(math.log2(2.0 / delta)))
        self._level_hash: KWiseHash = random_kwise(2, 1 << self.n_levels, rng)
        self._tiebreak: KWiseHash = random_kwise(2, 1 << 61, rng)
        # Construct real per-level recoveries first so the RNG draw order
        # is identical to a list of independent structures, then stack
        # their accumulator planes into the sampler-owned 3-D arrays.
        recoveries = [
            SSparseRecovery(dim, sparsity, delta / (2 * self.n_levels), rng)
            for _ in range(self.n_levels)
        ]
        template = recoveries[0]
        self._sparsity = template.s
        self._recovery_delta = template.delta
        self._n_rows = template.n_rows
        self._n_buckets = template.n_buckets
        self._row_hashes: List[List[KWiseHash]] = [r._hashes for r in recoveries]
        self._row_stacks: List[KWiseHashStack] = [r._stack for r in recoveries]
        self._r = np.stack([r._r for r in recoveries])
        self._weight = np.stack([r._weight for r in recoveries])
        self._dot = np.stack([r._dot for r in recoveries])
        self._fingerprint = np.stack([r._fingerprint for r in recoveries])
        # Row-hash coefficients stacked as (n_levels, n_rows) matrices so
        # the fused batch path evaluates every (level, row) bucket with
        # one broadcast Horner step (all row hashes are pairwise
        # independent, i.e. degree-1 polynomials).
        self._row_a = np.array(
            [[h.coefficients[0] for h in hashes] for hashes in self._row_hashes],
            dtype=np.uint64,
        )
        self._row_b = np.array(
            [[h.coefficients[1] for h in hashes] for hashes in self._row_hashes],
            dtype=np.uint64,
        )
        # Lazily-built windowed fingerprint power tables, stacked over
        # all levels (pure cache derived from _r; not charged).
        self._power_tables: Optional[np.ndarray] = None
        # Sample memo: sample() is a pure function of the stacked
        # planes, so the result is served from cache until an update or
        # merge dirties the sampler (probe-heavy pipelines re-query
        # unchanged samplers constantly).
        self._dirty = True
        self._sample_cached = False
        self._sample_memo: Optional[int] = None

    def _ensure_power_tables(self) -> Optional[np.ndarray]:
        """Build the stacked ``(windows, 256, L, R, B)`` tables when small."""
        if self._power_tables is None:
            entries = (
                power_table_windows(self.dim) * 256 * self._r.size
            )
            if entries <= POWER_TABLE_MAX_ENTRIES:
                self._power_tables = build_power_tables(self._r, self.dim)
        return self._power_tables

    def _recovery(self, level: int) -> SSparseRecovery:
        """A view-backed :class:`SSparseRecovery` over one level's planes.

        The views write through to the stacked arrays, so scalar updates,
        decoding and merging through the view mutate the sampler state.
        Views are transient — never stored — so ``deepcopy`` of the
        sampler only ever copies the stacked planes.
        """
        recovery = SSparseRecovery.__new__(SSparseRecovery)
        recovery.dim = self.dim
        recovery.s = self._sparsity
        recovery.delta = self._recovery_delta
        recovery.n_buckets = self._n_buckets
        recovery.n_rows = self._n_rows
        recovery._hashes = self._row_hashes[level]
        recovery._stack = self._row_stacks[level]
        recovery._r = self._r[level]
        recovery._weight = self._weight[level]
        recovery._dot = self._dot[level]
        recovery._fingerprint = self._fingerprint[level]
        recovery._power_tables = (
            None if self._power_tables is None else self._power_tables[:, :, level]
        )
        # The view is transient, so its decode memo never survives; the
        # durable memo lives on the sampler (see sample()).
        recovery._dirty = True
        recovery._decode_cached = False
        recovery._decode_cache = None
        return recovery

    @property
    def _recoveries(self) -> List[SSparseRecovery]:
        """Per-level recovery views (see :meth:`_recovery`)."""
        return [self._recovery(level) for level in range(self.n_levels)]

    def _level_of(self, index: int) -> int:
        """Deepest level at which ``index`` survives nested subsampling.

        Index survives level ``l`` iff the low ``l`` bits of its level
        hash are zero, so survival probabilities are 1, 1/2, 1/4, ...
        and levels are nested.
        """
        value = self._level_hash(index)
        level = 0
        while level + 1 < self.n_levels and value % (1 << (level + 1)) == 0:
            level += 1
        return level

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``."""
        self._dirty = True
        deepest = self._level_of(index)
        for level in range(deepest + 1):
            self._recovery(level).update(index, delta)

    def _levels_of_batch(self, indices: np.ndarray) -> np.ndarray:
        """Deepest surviving level for every index, vectorized."""
        values = self._level_hash.batch(indices)
        levels = np.zeros(len(indices), dtype=np.int64)
        for level in range(1, self.n_levels):
            survives = (levels == level - 1) & (values % (1 << level) == 0)
            levels[survives] = level
        return levels

    def update_batch(
        self,
        indices: np.ndarray,
        deltas: np.ndarray,
        *,
        levels: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a batch of signed updates.

        The level of every index is computed with one vectorized hash
        evaluation (or taken from ``levels`` when a bank already fused
        that pass across samplers).  An index surviving to level ``l``
        updates levels ``0..l``, so the batch expands into flat
        ``(item, level)`` entries; every entry's bucket, fingerprint
        power and cell address are computed with broadcast passes over
        the stacked planes and ALL levels are absorbed with one exact
        scatter per accumulator plane — no Python loop over levels or
        recovery objects.  Final state matches item-by-item updates
        exactly — the sketch is linear.
        """
        if len(indices) == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.dim:
            bad = indices[(indices < 0) | (indices >= self.dim)][0]
            raise ValueError(f"index {int(bad)} out of range [0, {self.dim})")
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        self._dirty = True
        if levels is None:
            levels = self._levels_of_batch(indices)
        power_tables = self._ensure_power_tables()
        # Expand to one entry per (item, level <= deepest(item)).  Entry
        # e carries item index x[e], delta d[e] and level lab[e].
        counts = levels + 1
        starts = np.cumsum(counts) - counts
        n_entries = int(counts[-1] + starts[-1])
        x = np.repeat(indices, counts)
        lab = np.arange(n_entries, dtype=np.int64) - np.repeat(starts, counts)
        d = np.repeat(deltas, counts)
        rows = np.arange(self._n_rows, dtype=np.int64)[np.newaxis, :]
        # Degree-1 Horner with per-entry coefficients — bit-identical to
        # each level's KWiseHash on its surviving subset.
        field = _fold61(
            mulmod_p61(self._row_a[lab], _fold61(x.astype(np.uint64))[:, np.newaxis])
            + self._row_b[lab]
        )
        buckets = (field % np.uint64(self._n_buckets)).astype(np.int64)
        addr = (lab[:, np.newaxis] * self._n_rows + rows) * self._n_buckets + buckets
        if power_tables is not None:
            powers = power_tables[
                0, (x & _WINDOW_MASK)[:, np.newaxis], lab[:, np.newaxis], rows, buckets
            ]
            for window in range(1, power_tables.shape[0]):
                window_values = (x >> np.int64(window * _WINDOW_BITS)) & _WINDOW_MASK
                powers = mulmod_p61(
                    powers,
                    power_tables[
                        window,
                        window_values[:, np.newaxis],
                        lab[:, np.newaxis],
                        rows,
                        buckets,
                    ],
                )
        else:
            powers = powmod_p61(
                self._r[lab[:, np.newaxis], rows, buckets],
                x.astype(np.uint64)[:, np.newaxis],
            )
        # delta = ±1 covers edge streams: ±r^i mod p needs no multiply
        # (powers lie in [1, p), so p - powers is the exact negation).
        magnitudes = np.abs(d)
        if magnitudes.max() == 1 and magnitudes.min() == 1:
            contrib = np.where(
                (d > 0)[:, np.newaxis],
                powers,
                np.uint64(PRIME_61) - powers,
            )
        else:
            contrib = mulmod_p61(
                powers, np.remainder(d, PRIME_61).astype(np.uint64)[:, np.newaxis]
            )
        shape = addr.shape
        scatter_cell_updates(
            self._weight.reshape(-1),
            self._dot.reshape(-1),
            self._fingerprint.reshape(-1),
            addr.ravel(),
            np.broadcast_to(d[:, np.newaxis], shape).ravel(),
            np.broadcast_to((x * d)[:, np.newaxis], shape).ravel(),
            contrib.ravel(),
        )

    def merge(self, other: "L0Sampler") -> "L0Sampler":
        """Level-wise merge of two samplers over disjoint sub-streams.

        Valid only for samplers split from the same seeded instance
        (identical level/tiebreak hashes); all levels are linear
        sketches, so the merged sampler equals the single-pass sampler
        exactly.
        """
        if (
            not isinstance(other, L0Sampler)
            or (self.dim, self.n_levels) != (other.dim, other.n_levels)
            or self._level_hash.coefficients != other._level_hash.coefficients
            or self._tiebreak.coefficients != other._tiebreak.coefficients
        ):
            raise ValueError(
                "cannot merge incompatible l0-samplers; split both from the "
                "same seeded structure"
            )
        for mine, theirs in zip(self._row_hashes, other._row_hashes):
            for my_hash, their_hash in zip(mine, theirs):
                if my_hash.coefficients != their_hash.coefficients:
                    raise ValueError(
                        "cannot merge s-sparse recoveries with different row "
                        "hashes; split both from the same seeded structure"
                    )
        if not np.array_equal(self._r, other._r):
            raise ValueError(
                "cannot merge 1-sparse cells with different dimensions or "
                "fingerprint bases; split both from the same seeded structure"
            )
        self._dirty = True
        self._weight += other._weight
        self._dot += other._dot
        # In place: when this sampler belongs to an exact-mode bank its
        # planes are views into the bank's stacked 4-D accumulators;
        # rebinding would silently detach them.
        self._fingerprint[:] = _fold61(self._fingerprint + other._fingerprint)
        return self

    def __getstate__(self):
        # Power tables are a pure cache derived from ``_r``; dropping
        # them keeps pickles/deepcopies small and avoids materialising
        # per-sampler copies of bank-shared tables.
        state = dict(self.__dict__)
        state["_power_tables"] = None
        return state

    def sample(self) -> Optional[int]:
        """Return a near-uniform support coordinate, or None on failure.

        Scans levels from deepest to shallowest; at the first level whose
        recovery decodes to a non-empty set, returns the coordinate with
        the smallest tiebreak hash.  Returns None when every level fails
        or the vector is empty.

        The result is a pure function of the stacked planes, so it is
        memoized until the next update or merge dirties the sampler.
        """
        if not self._dirty and self._sample_cached:
            return self._sample_memo
        result: Optional[int] = None
        for level in range(self.n_levels - 1, -1, -1):
            decoded = self._recovery(level).decode()
            if decoded is None:
                continue
            if decoded:
                result = min(decoded, key=self._tiebreak)
                break
        self._sample_memo = result
        self._sample_cached = True
        self._dirty = False
        return result

    def space_words(self) -> int:
        """Actual words retained: recoveries plus the two hashes."""
        return (
            sum(self._recovery(level).space_words() for level in range(self.n_levels))
            + self._level_hash.space_words()
            + self._tiebreak.space_words()
        )


class L0SamplerBank:
    """A bank of ``count`` independent ℓ₀-samplers over one vector.

    Args:
        dim: vector dimension shared by all samplers.
        count: number of samplers.
        delta: per-sampler failure probability.
        rng: randomness source.
        mode: ``"exact"`` (real sketches) or ``"fast"`` (support-tracking
            simulation with analytically accounted space — see module
            docstring).
    """

    MODES = ("exact", "fast")

    def __init__(
        self,
        dim: int,
        count: int,
        delta: float,
        rng: random.Random,
        mode: str = "fast",
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.dim = dim
        self.count = count
        self.delta = delta
        self.mode = mode
        if mode == "exact":
            self._samplers: List[L0Sampler] = [
                L0Sampler(dim, delta, rng) for _ in range(count)
            ]
            # One fused evaluation assigns a chunk's subsampling levels
            # for every sampler at once (all share one n_levels).
            self._level_stack: Optional[KWiseHashStack] = (
                KWiseHashStack([sampler._level_hash for sampler in self._samplers])
                if self._samplers
                else None
            )
            self._support: Optional[ExactSupport] = None
            self._draw_rng: Optional[random.Random] = None
            # Buffered (indices, deltas, already-netted) update columns,
            # consolidated by _flush_updates (see _BANK_FLUSH_PENDING).
            self._pending: List[Tuple[np.ndarray, np.ndarray, bool]] = []
            self._pending_len = 0
            self._stack_planes()
        else:
            self._samplers = []
            self._level_stack = None
            self._support = ExactSupport(dim)
            self._draw_rng = random.Random(rng.getrandbits(64))

    def _stack_planes(self) -> None:
        """Stack all samplers' accumulator planes into bank 4-D arrays.

        The bank-wide fused kernel scatters every sampler's
        contributions in one pass, which needs all accumulators
        contiguous: ``(sampler, level, row, bucket)`` arrays for the
        weight/dot/fingerprint planes and ``(sampler * level, row)``
        matrices for the row-hash coefficients.  Each sampler's arrays
        are then re-pointed at views of the stacked planes, so the
        per-sampler scalar path, decoding and merging all read and write
        the very same memory — no dual bookkeeping, no divergence.
        Called from ``__init__`` and again after unpickling/deepcopy
        (copying a numpy view materialises an independent array, which
        would silently break the aliasing).
        """
        if not self._samplers:
            self._bank_weight = self._bank_dot = self._bank_fingerprint = None
            self._bank_r = self._bank_row_a = self._bank_row_b = None
            return
        samplers = self._samplers
        self._bank_weight = np.stack([s._weight for s in samplers])
        self._bank_dot = np.stack([s._dot for s in samplers])
        self._bank_fingerprint = np.stack([s._fingerprint for s in samplers])
        self._bank_r = np.stack([s._r for s in samplers])
        for i, sampler in enumerate(samplers):
            sampler._weight = self._bank_weight[i]
            sampler._dot = self._bank_dot[i]
            sampler._fingerprint = self._bank_fingerprint[i]
            sampler._r = self._bank_r[i]
        n_rows = samplers[0]._n_rows
        self._bank_row_a = np.stack([s._row_a for s in samplers]).reshape(-1, n_rows)
        self._bank_row_b = np.stack([s._row_b for s in samplers]).reshape(-1, n_rows)

    def update(self, index: int, delta: int) -> None:
        """Fan ``vector[index] += delta`` out to every sampler."""
        if self.mode == "exact":
            for sampler in self._samplers:
                sampler.update(index, delta)
        else:
            assert self._support is not None
            self._support.update(index, delta)

    def update_batch(
        self,
        indices: np.ndarray,
        deltas: np.ndarray,
        netted: bool = False,
    ) -> None:
        """Fan a batch of signed updates out to every sampler.

        Every sampler is a linear sketch (and the fast-mode support
        tracker a plain sum), so collapsing a chunk's repeated or
        cancelling updates changes nothing about the final state.  Fast
        mode defers everything to the support tracker's buffered batch
        path.  Exact mode buffers the update columns and consolidates
        them lazily (at :data:`_BANK_FLUSH_PENDING` pending coordinates,
        or at the next query/merge/pickle): consolidation nets every
        buffered chunk per coordinate in one pass and absorbs the net
        updates with the bank-wide fused kernel (:meth:`_apply_batch`).
        ``netted=True`` promises ``indices`` are already unique with
        per-coordinate net ``deltas`` (Algorithm 3 nets a whole chunk
        for all its banks in one pass), which lets a lone buffered chunk
        skip re-netting.  Linearity makes the final state bit-identical
        to eager item-by-item fan-out.
        """
        if len(indices) == 0:
            return
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if self.mode == "fast":
            assert self._support is not None
            self._support.update_batch(indices, deltas)
            return
        if not self._samplers:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.dim:
            bad = indices[(indices < 0) | (indices >= self.dim)][0]
            raise ValueError(f"index {int(bad)} out of range [0, {self.dim})")
        # Copy both columns: callers (shared-memory transports, reused
        # chunk buffers) may overwrite them after this call returns.
        self._pending.append(
            (
                np.array(indices, dtype=np.int64),
                np.array(np.asarray(deltas), dtype=np.int64),
                bool(netted),
            )
        )
        self._pending_len += len(indices)
        if self._pending_len >= _BANK_FLUSH_PENDING:
            self._flush_updates()

    def _flush_updates(self) -> None:
        """Net every buffered batch and absorb it with the fused kernel."""
        if not self._pending:
            return
        pending, self._pending, self._pending_len = self._pending, [], 0
        if len(pending) == 1 and pending[0][2]:
            unique, net = pending[0][0], pending[0][1]
        else:
            coords = np.concatenate([batch[0] for batch in pending])
            deltas = np.concatenate([batch[1] for batch in pending])
            unique, inverse = np.unique(coords, return_inverse=True)
            net = np.zeros(len(unique), dtype=np.int64)
            np.add.at(net, inverse, deltas)
        live = net != 0
        if not live.any():
            return
        if not live.all():
            unique, net = unique[live], net[live]
        # The fused kernel writes the stacked planes directly, bypassing
        # the samplers' own mutators — invalidate their sample memos.
        for sampler in self._samplers:
            sampler._dirty = True
        for start in range(0, len(unique), _BANK_COORD_CHUNK):
            stop = start + _BANK_COORD_CHUNK
            self._apply_batch(unique[start:stop], net[start:stop])

    def _apply_batch(self, unique: np.ndarray, net: np.ndarray) -> None:
        """Absorb netted updates into every sampler in one fused pass.

        The whole bank is treated as one accumulator indexed by
        ``(sampler, level, row, bucket)``: level assignment for all
        samplers is one stacked hash evaluation; the ``(sampler, item)``
        grid expands to one entry per surviving ``(sampler, item,
        level)`` carrying the bank-flat plane index ``sampler * L +
        level``; buckets are evaluated with one broadcast Horner pass
        over the bank-stacked row coefficients; and all contributions
        land in the 4-D planes through ONE limb-split bincount scatter
        per entry slice.  Fingerprint power products are gathered from
        each sampler's own windowed table — the entry order is
        sampler-major, so each sampler's segment of an entry slice is
        contiguous and its (small, cache-resident) table is walked once.
        Every plane update is an exact int64 add or a canonical mod-p
        fold — both commutative and associative — so the final state is
        bit-identical to fanning the same updates out sampler by sampler
        (and item by item).
        """
        template = self._samplers[0]
        n_samplers = len(self._samplers)
        n_levels = template.n_levels
        n_rows = template._n_rows
        n_buckets = template._n_buckets
        assert self._level_stack is not None
        values = self._level_stack.batch_rows(unique)
        levels = np.zeros(values.shape, dtype=np.int64)
        for level in range(1, n_levels):
            survives = (levels == level - 1) & (values % (1 << level) == 0)
            levels[survives] = level
        counts = (levels + 1).reshape(-1)
        starts = np.cumsum(counts) - counts
        n_entries = int(starts[-1] + counts[-1])
        x = np.repeat(np.tile(unique, n_samplers), counts)
        d = np.repeat(np.tile(net, n_samplers), counts)
        lab = np.arange(n_entries, dtype=np.int64) - np.repeat(starts, counts)
        pair = (
            np.repeat(
                np.repeat(np.arange(n_samplers, dtype=np.int64), len(unique)),
                counts,
            )
            * n_levels
            + lab
        )
        # Entries are sampler-major; bounds[i] is sampler i's first entry.
        per_sampler = counts.reshape(n_samplers, -1).sum(axis=1)
        bounds = np.concatenate(
            ([0], np.cumsum(per_sampler))
        ).astype(np.int64)
        rows = np.arange(n_rows, dtype=np.int64)[np.newaxis, :]
        magnitudes = np.abs(d)
        unit = bool(magnitudes.max() == 1) and bool(magnitudes.min() == 1)
        weight_flat = self._bank_weight.reshape(-1)
        dot_flat = self._bank_dot.reshape(-1)
        fingerprint_flat = self._bank_fingerprint.reshape(-1)
        for begin in range(0, n_entries, _BANK_ENTRY_CHUNK):
            end = min(begin + _BANK_ENTRY_CHUNK, n_entries)
            ex, ed, epair = x[begin:end], d[begin:end], pair[begin:end]
            field = _fold61(
                mulmod_p61(
                    self._bank_row_a[epair],
                    _fold61(ex.astype(np.uint64))[:, np.newaxis],
                )
                + self._bank_row_b[epair]
            )
            buckets = (field % np.uint64(n_buckets)).astype(np.int64)
            addr = (epair[:, np.newaxis] * n_rows + rows) * n_buckets + buckets
            powers = np.empty((end - begin, n_rows), dtype=np.uint64)
            first = int(np.searchsorted(bounds, begin, side="right")) - 1
            last = int(np.searchsorted(bounds, end, side="left"))
            for sampler_index in range(first, last):
                lo = max(begin, int(bounds[sampler_index])) - begin
                hi = min(end, int(bounds[sampler_index + 1])) - begin
                if lo >= hi:
                    continue
                sampler = self._samplers[sampler_index]
                tables = sampler._ensure_power_tables()
                sx = ex[lo:hi]
                slab = epair[lo:hi, np.newaxis] - sampler_index * n_levels
                sbuckets = buckets[lo:hi]
                if tables is not None:
                    segment = tables[
                        0, (sx & _WINDOW_MASK)[:, np.newaxis],
                        slab, rows, sbuckets,
                    ]
                    for window in range(1, tables.shape[0]):
                        shifted = (
                            sx >> np.int64(window * _WINDOW_BITS)
                        ) & _WINDOW_MASK
                        segment = mulmod_p61(
                            segment,
                            tables[
                                window, shifted[:, np.newaxis],
                                slab, rows, sbuckets,
                            ],
                        )
                else:
                    segment = powmod_p61(
                        sampler._r[slab, rows, sbuckets],
                        sx.astype(np.uint64)[:, np.newaxis],
                    )
                powers[lo:hi] = segment
            if unit:
                contrib = np.where(
                    (ed > 0)[:, np.newaxis],
                    powers,
                    np.uint64(PRIME_61) - powers,
                )
            else:
                contrib = mulmod_p61(
                    powers,
                    np.remainder(ed, PRIME_61).astype(np.uint64)[:, np.newaxis],
                )
            shape = addr.shape
            scatter_cell_updates(
                weight_flat,
                dot_flat,
                fingerprint_flat,
                addr.ravel(),
                np.broadcast_to(ed[:, np.newaxis], shape).ravel(),
                np.broadcast_to((ex * ed)[:, np.newaxis], shape).ravel(),
                contrib.ravel(),
            )

    def merge(self, other: "L0SamplerBank") -> "L0SamplerBank":
        """Merge two banks over disjoint sub-streams of one vector.

        Exact mode merges the underlying linear sketches sampler by
        sampler; fast mode merges the tracked supports (the draw RNG of
        ``self`` is retained, so a bank reassembled from same-seed shards
        answers :meth:`sample_all` bit-identically to a single-pass
        bank).
        """
        if not isinstance(other, L0SamplerBank):
            raise ValueError(
                f"cannot merge L0SamplerBank with {type(other).__name__}"
            )
        if (self.dim, self.count, self.mode) != (other.dim, other.count, other.mode):
            raise ValueError(
                f"cannot merge bank (dim={self.dim}, count={self.count}, "
                f"mode={self.mode}) with bank (dim={other.dim}, "
                f"count={other.count}, mode={other.mode})"
            )
        if self.mode == "exact":
            self._flush_updates()
            other._flush_updates()
            for mine, theirs in zip(self._samplers, other._samplers):
                mine.merge(theirs)
        else:
            assert self._support is not None and other._support is not None
            self._support.merge(other._support)
        return self

    def sample_all(self) -> List[Optional[int]]:
        """Query every sampler; entries are None on (simulated) failure."""
        if self.mode == "exact":
            self._flush_updates()
            return [sampler.sample() for sampler in self._samplers]
        assert self._support is not None and self._draw_rng is not None
        support = self._support.support()
        if not support:
            return [None] * self.count
        results: List[Optional[int]] = []
        for _ in range(self.count):
            if self._draw_rng.random() < self.delta:
                results.append(None)
            else:
                results.append(self._draw_rng.choice(support))
        return results

    def space_words(self) -> int:
        """Exact mode: sum of real structure sizes.  Fast mode: paper formula."""
        if self.mode == "exact":
            # Buffered input columns are transient ingest state, not
            # structure; consolidate before accounting.
            self._flush_updates()
            return sum(sampler.space_words() for sampler in self._samplers)
        return self.count * l0_sampler_space_words(self.dim, self.delta)

    def __deepcopy__(self, memo) -> "L0SamplerBank":
        dup = object.__new__(L0SamplerBank)
        memo[id(self)] = dup
        dup.__dict__.update(copy.deepcopy(self.__getstate__(), memo))
        if dup.mode == "exact":
            dup._stack_planes()
        return dup

    def __getstate__(self):
        # Consolidate buffered updates, then drop the bank-stacked
        # planes/tables: copying or pickling a numpy view materialises a
        # standalone array, which would silently detach the samplers
        # from the bank accumulators.  ``__setstate__`` (and
        # ``__deepcopy__``) re-stack from the samplers' copied planes.
        if self.mode == "exact":
            self._flush_updates()
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_bank_")
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self.mode == "exact":
            self._stack_planes()


class L0EdgeBank:
    """Engine adapter: an :class:`L0SamplerBank` over the edge vector.

    Presents the bank as a pipeline-registrable
    :class:`~repro.engine.protocol.MergeableStreamProcessor`: each
    ``(a, b, sign)`` update becomes a signed update to coordinate
    ``a * m + b`` of the implicit n×m edge-incidence vector — exactly
    the vector Algorithm 3's samplers observe.  ``finalize`` returns
    the adapter itself, so callers keep querying (:meth:`sample_all`,
    :meth:`space_words`) after the run, like the other query-style
    summaries.

    Every sampler is a linear sketch (and the fast mode's support
    tracker a plain sum), so updates may be partitioned arbitrarily
    across shards (``shard_routing = "any"``); a bank reassembled from
    same-seed shards answers :meth:`sample_all` bit-identically to a
    single-pass bank.
    """

    #: Linear sketches merge under any stream partition.
    shard_routing = "any"

    def __init__(
        self,
        n: int,
        m: int,
        count: int,
        delta: float = 0.05,
        seed: int = 0,
        mode: str = "fast",
    ) -> None:
        if n < 1 or m < 1:
            raise ValueError(f"n and m must be >= 1, got n={n}, m={m}")
        self.n = n
        self.m = m
        self.seed = seed
        self._started = False
        self._bank = L0SamplerBank(
            n * m, count, delta, random.Random(seed), mode=mode
        )

    def process_item(self, item) -> None:
        """Apply one signed edge update (the engine's per-item path)."""
        self._started = True
        self._bank.update(item.edge.flat_index(self.m), item.sign)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        if len(a) == 0:
            return
        self._started = True
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.min() < 0 or a.max() >= self.n or b.min() < 0 or b.max() >= self.m:
            raise ValueError(
                f"edge endpoints out of range ({self.n}, {self.m})"
            )
        # Deferred import: sketch is a lower layer than streams and
        # must not depend on it at module-import time.
        from repro.streams.edge import insert_signs

        indices = a * np.int64(self.m) + b
        deltas = (
            insert_signs(len(a))
            if sign is None
            else np.asarray(sign, dtype=np.int64)
        )
        self._bank.update_batch(indices, deltas)

    def finalize(self) -> "L0EdgeBank":
        return self

    def split(self, n_shards: int) -> List["L0EdgeBank"]:
        """``n_shards`` same-seed empty shard banks (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._started:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def merge(self, other: "L0EdgeBank") -> "L0EdgeBank":
        if not isinstance(other, L0EdgeBank) or (self.n, self.m) != (
            other.n, other.m
        ):
            raise ValueError(
                "cannot merge incompatible l0 edge banks; split both from "
                "the same seeded structure"
            )
        self._bank.merge(other._bank)
        self._started = self._started or other._started
        return self

    def sample_all(self) -> List[Optional[int]]:
        """Every sampler's flat edge index (``a * m + b``), None on failure."""
        return self._bank.sample_all()

    def sample_edges(self) -> List[Optional[tuple]]:
        """Every sampler's sampled edge as an ``(a, b)`` pair."""
        return [
            None if index is None else (int(index // self.m), int(index % self.m))
            for index in self._bank.sample_all()
        ]

    def space_words(self) -> int:
        return self._bank.space_words()
