"""s-sparse recovery by hashing into 1-sparse cells.

An :class:`SSparseRecovery` structure recovers the full support of an
implicit vector provided the support size is at most ``s``.  It hashes
each index into ``2s`` buckets per row across ``rows`` independent rows
of 1-sparse cells; a coordinate is recovered whenever it lands alone in
some bucket in some row.  With ``rows = O(log(s/delta))`` all coordinates
are recovered with probability ``1 - delta`` (each coordinate collides
in one row with probability <= 1/2).

This is the standard building block used by ℓ₀-samplers to recover the
coordinates surviving level-wise subsampling.

Layout
------
The cells live in three flat NumPy accumulator planes of shape
``(n_rows, n_buckets)`` — ``weight`` (sum of deltas, ``int64``),
``dot`` (sum of ``index * delta``, ``int64``) and ``fingerprint``
(sum of ``delta * r^index`` in GF(2^61 - 1), ``uint64``) — plus one
``uint64`` plane of per-cell fingerprint bases ``r``.  This is the same
state a grid of :class:`~repro.sketch.onesparse.OneSparseCell` objects
would hold (and the RNG draw order matches that layout exactly: row
hashes first, then fingerprint bases row-major), but a whole batch is
absorbed with one fused :class:`~repro.sketch.hashing.KWiseHashStack`
evaluation and one scatter-add per plane instead of a Python loop per
(row, item) pair.

The ``int64`` planes are exact until a cell's running ``|weight|`` or
``|dot|`` exceeds 2^63 — with graph streams (unit deltas, indices below
2^40) that takes >2^23 net updates landing in one cell, far beyond any
supported stream; the fingerprint plane is modular and cannot overflow.

The fingerprint scatter is modular: per-item contributions
``(delta mod p) * r^index mod p`` are split into 32-bit limbs,
scatter-added into temporary ``int64`` planes (a chunk of ``< 2^31``
items cannot overflow them), and the limbs are recombined per cell with
``2^61 ≡ 1`` folds.  Addition in GF(p) is commutative, so the result is
bit-identical to applying the items one at a time.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sketch.hashing import (
    PRIME_61,
    KWiseHash,
    KWiseHashStack,
    _fold61,
    mulmod_p61,
    powmod_p61,
    random_kwise,
)
from repro.sketch.onesparse import CellState, OneSparseResult

_MASK32 = np.uint64((1 << 32) - 1)
_SHIFT32 = np.uint64(32)
_POW32 = np.uint64(1 << 32)  # 2^32 < p, already reduced

_WINDOW_BITS = 8
_WINDOW_SIZE = 1 << _WINDOW_BITS
_WINDOW_MASK = np.int64(_WINDOW_SIZE - 1)
#: Upper bound on cached power-table entries per structure (32 MB of
#: uint64) — beyond this the fingerprint falls back to the shared
#: square-and-multiply chain.
POWER_TABLE_MAX_ENTRIES = 1 << 22


def power_table_windows(dim: int) -> int:
    """Number of 8-bit exponent windows needed to cover ``[0, dim)``."""
    return max(1, (max(dim - 1, 1).bit_length() + _WINDOW_BITS - 1) // _WINDOW_BITS)


def build_power_tables(r: np.ndarray, dim: int) -> np.ndarray:
    """Per-cell windowed power tables for fingerprint exponentiation.

    Returns a ``(windows, 256) + r.shape`` ``uint64`` array where entry
    ``[w, v]`` holds ``r ** (v * 256**w) mod p`` element-wise, so any
    ``r ** index`` with ``index < dim`` is the product of one lookup per
    window — ``windows - 1`` modular multiplies per element instead of a
    ``2 * bit_length(index)``-round square-and-multiply chain.

    Each window fills by log-doubling: once exponents ``[0, filled)``
    exist, ``table[filled + j] = table[j] * base^filled`` extends them
    in one vectorized multiply, so a window costs ~16 :func:`mulmod_p61`
    calls instead of 255 sequential ones — the dominant cost of a bank's
    first fused chunk.  Every entry is the canonical residue
    ``r^exponent mod p`` (``mulmod_p61`` is exact and always reduces),
    so the tables are bit-identical to the sequential product chain and
    to ``pow(int(r), index, PRIME_61)``.
    """
    n_windows = power_table_windows(dim)
    tables = np.empty((n_windows, _WINDOW_SIZE) + r.shape, dtype=np.uint64)
    base = np.asarray(r, dtype=np.uint64)
    for window in range(n_windows):
        table = tables[window]
        table[0] = np.uint64(1)
        table[1] = base
        filled = 2
        while filled < _WINDOW_SIZE:
            take = min(filled, _WINDOW_SIZE - filled)
            step = mulmod_p61(table[filled - 1], base)
            table[filled : filled + take] = mulmod_p61(table[:take], step)
            filled += take
        if window + 1 < n_windows:
            base = mulmod_p61(table[_WINDOW_SIZE - 1], base)
    return tables


def _decode_cell(
    weight: int, dot: int, fingerprint: int, r: int, dim: int
) -> OneSparseResult:
    """Classify one cell's accumulators (Python-int arithmetic throughout).

    Mirrors :meth:`OneSparseCell.decode` exactly — including Python's
    floor-division semantics for negative ``weight``.
    """
    if weight == 0 and dot == 0 and fingerprint == 0:
        return OneSparseResult(CellState.ZERO)
    if weight != 0 and dot % weight == 0:
        index = dot // weight
        if 0 <= index < dim:
            expected = (weight * pow(r, index, PRIME_61)) % PRIME_61
            if expected == fingerprint:
                return OneSparseResult(CellState.ONE_SPARSE, index, weight)
    return OneSparseResult(CellState.COLLISION)


_BINCOUNT_CHUNK = 1 << 20  # keeps every float64 limb sum integral (< 2^53)


def _bincount_sum_int64(
    addr: np.ndarray, values: np.ndarray, length: int
) -> np.ndarray:
    """Exact per-address ``int64`` sums via two float64 bincounts.

    Splits each value into a non-negative low 32-bit limb and a signed
    high limb; with at most 2^20 contributions every limb sum stays an
    integer below 2^53, so the float64 accumulation is exact and the
    recombined ``int64`` result is bit-identical to sequential addition.
    """
    lo = np.bincount(
        addr, weights=(values & np.int64(0xFFFFFFFF)).astype(np.float64),
        minlength=length,
    ).astype(np.int64)
    hi = np.bincount(
        addr, weights=(values >> np.int64(32)).astype(np.float64),
        minlength=length,
    ).astype(np.int64)
    return (hi << np.int64(32)) + lo


def scatter_cell_updates(
    weight: np.ndarray,
    dot: np.ndarray,
    fingerprint: np.ndarray,
    addr: np.ndarray,
    weight_values: np.ndarray,
    dot_values: np.ndarray,
    fingerprint_values: np.ndarray,
) -> None:
    """Scatter-add per-item contributions into flat accumulator planes.

    ``weight``/``dot``/``fingerprint`` are 1-D views over all target
    cells; ``addr`` holds a flat cell address per contribution.  Each
    plane reduces with exact limb-split ``np.bincount`` passes (far
    faster than ``np.add.at``), processed in chunks small enough that
    every float64 limb sum stays integral; the fingerprint plane
    recombines its 32-bit limb sums modulo ``2^61 - 1``.  Addition is
    commutative and exact in every plane, hence the result is
    bit-identical to applying the items one at a time.
    """
    total = len(addr)
    length = len(weight)
    for start in range(0, total, _BINCOUNT_CHUNK):
        stop = min(start + _BINCOUNT_CHUNK, total)
        chunk_addr = addr[start:stop]
        weight += _bincount_sum_int64(chunk_addr, weight_values[start:stop], length)
        dot += _bincount_sum_int64(chunk_addr, dot_values[start:stop], length)
        contrib = fingerprint_values[start:stop]
        lo = np.bincount(
            chunk_addr,
            weights=(contrib & _MASK32).astype(np.float64),
            minlength=length,
        ).astype(np.uint64)
        hi = np.bincount(
            chunk_addr,
            weights=(contrib >> _SHIFT32).astype(np.float64),
            minlength=length,
        ).astype(np.uint64)
        fingerprint[:] = _fold61(
            fingerprint
            + _fold61(mulmod_p61(_fold61(hi), _POW32) + _fold61(lo))
        )


class SSparseRecovery:
    """Recover vectors of support size at most ``s``.

    Args:
        dim: dimension of the implicit vector.
        s: target sparsity.
        delta: failure probability bound for full-support recovery.
        rng: randomness source for hash functions and fingerprints.
    """

    def __init__(self, dim: int, s: int, delta: float, rng: random.Random) -> None:
        if s <= 0:
            raise ValueError(f"s must be positive, got {s}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        self.dim = dim
        self.s = s
        self.delta = delta
        self.n_buckets = 2 * s
        self.n_rows = max(1, math.ceil(math.log2(max(s, 2) / delta)))
        self._hashes: List[KWiseHash] = [
            random_kwise(2, self.n_buckets, rng) for _ in range(self.n_rows)
        ]
        self._stack = KWiseHashStack(self._hashes)
        # Fingerprint bases drawn row-major — the same order a grid of
        # OneSparseCell objects would consume the RNG.
        self._r = np.array(
            [
                [rng.randrange(2, PRIME_61) for _ in range(self.n_buckets)]
                for _ in range(self.n_rows)
            ],
            dtype=np.uint64,
        )
        self._weight = np.zeros((self.n_rows, self.n_buckets), dtype=np.int64)
        self._dot = np.zeros((self.n_rows, self.n_buckets), dtype=np.int64)
        self._fingerprint = np.zeros((self.n_rows, self.n_buckets), dtype=np.uint64)
        # Lazily-built windowed power tables (pure cache, derived from
        # _r — not charged to space_words, like a hash stack's stacked
        # coefficient matrix).
        self._power_tables: Optional[np.ndarray] = None
        # Decode memo: valid while no update/merge has dirtied the
        # planes since the last decode (probe-heavy pipelines decode
        # unchanged structures repeatedly).
        self._dirty = True
        self._decode_cached = False
        self._decode_cache: Optional[Dict[int, int]] = None

    def _ensure_power_tables(self) -> Optional[np.ndarray]:
        """Build the fingerprint power tables when affordably small."""
        if self._power_tables is None:
            entries = (
                power_table_windows(self.dim)
                * _WINDOW_SIZE
                * self.n_rows
                * self.n_buckets
            )
            if entries <= POWER_TABLE_MAX_ENTRIES:
                self._power_tables = build_power_tables(self._r, self.dim)
        return self._power_tables

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``."""
        if not 0 <= index < self.dim:
            raise ValueError(f"index {index} out of range [0, {self.dim})")
        self._dirty = True
        for row, hash_function in enumerate(self._hashes):
            bucket = hash_function(index)
            self._weight[row, bucket] += delta
            self._dot[row, bucket] += index * delta
            self._fingerprint[row, bucket] = (
                int(self._fingerprint[row, bucket])
                + delta * pow(int(self._r[row, bucket]), index, PRIME_61)
            ) % PRIME_61

    def batch_contributions(
        self,
        indices: np.ndarray,
        deltas: np.ndarray,
        power_tables: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-item cell contributions for a chunk, ready to scatter.

        Returns ``(addr, weight_values, dot_values, fingerprint_values)``
        — flat arrays of length ``n_rows * len(indices)`` where ``addr``
        is the flat cell address (``row * n_buckets + bucket``).  Callers
        stacking several recoveries offset ``addr`` and concatenate
        before one :func:`scatter_cell_updates` pass (and may pass their
        own ``power_tables`` slice when they cache the tables stacked,
        or ``False`` to force the square-and-multiply chain — transient
        views must not rebuild tables per chunk).
        """
        buckets = self._stack.batch_rows(indices)
        rows = np.arange(self.n_rows, dtype=np.int64)[:, np.newaxis]
        addr = (rows * self.n_buckets + buckets).ravel()
        if power_tables is None:
            power_tables = self._ensure_power_tables()
        elif power_tables is False:
            power_tables = None
        if power_tables is not None:
            powers = power_tables[
                0, (indices & _WINDOW_MASK)[np.newaxis, :], rows, buckets
            ]
            for window in range(1, power_tables.shape[0]):
                window_values = (indices >> np.int64(window * _WINDOW_BITS)) & (
                    _WINDOW_MASK
                )
                powers = mulmod_p61(
                    powers,
                    power_tables[window, window_values[np.newaxis, :], rows, buckets],
                )
        else:
            r_selected = self._r[rows, buckets]
            powers = powmod_p61(
                r_selected, indices.astype(np.uint64)[np.newaxis, :]
            )
        contrib = mulmod_p61(
            powers,
            np.remainder(deltas, PRIME_61).astype(np.uint64)[np.newaxis, :],
        )
        shape = (self.n_rows, len(indices))
        weight_values = np.broadcast_to(deltas, shape).ravel()
        dot_values = np.broadcast_to(indices * deltas, shape).ravel()
        return addr, weight_values, dot_values, contrib.ravel()

    def update_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of signed updates.

        One fused hash evaluation over all rows, one modular-exponent
        pass for the fingerprints and one scatter-add per accumulator
        plane.  Final state matches item-by-item updates exactly.
        """
        if len(indices) == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.dim:
            bad = indices[(indices < 0) | (indices >= self.dim)][0]
            raise ValueError(f"index {int(bad)} out of range [0, {self.dim})")
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        self._dirty = True
        addr, weight_values, dot_values, contrib = self.batch_contributions(
            indices, deltas
        )
        scatter_cell_updates(
            self._weight.reshape(-1),
            self._dot.reshape(-1),
            self._fingerprint.reshape(-1),
            addr,
            weight_values,
            dot_values,
            contrib,
        )

    def merge(self, other: "SSparseRecovery") -> "SSparseRecovery":
        """Cell-wise sum of two recoveries over disjoint sub-streams.

        Valid only for structures split from the same seeded instance
        (identical row hashes); every cell is linear, so the merged
        structure equals the single-pass structure exactly.
        """
        if (
            not isinstance(other, SSparseRecovery)
            or (self.dim, self.s, self.n_rows) != (other.dim, other.s, other.n_rows)
        ):
            raise ValueError(
                "cannot merge incompatible s-sparse recoveries; split both "
                "from the same seeded structure"
            )
        for mine, theirs in zip(self._hashes, other._hashes):
            if mine.coefficients != theirs.coefficients:
                raise ValueError(
                    "cannot merge s-sparse recoveries with different row "
                    "hashes; split both from the same seeded structure"
                )
        if not np.array_equal(self._r, other._r):
            raise ValueError(
                "cannot merge 1-sparse cells with different dimensions or "
                "fingerprint bases; split both from the same seeded structure"
            )
        self._dirty = True
        self._weight += other._weight
        self._dot += other._dot
        # In place: the planes may be views into a bank's stacked 4-D
        # accumulators (or a sampler's 3-D ones); rebinding would detach
        # them.
        self._fingerprint[:] = _fold61(self._fingerprint + other._fingerprint)
        return self

    def __getstate__(self):
        # The windowed power tables are a pure cache derived from ``_r``;
        # dropping them keeps pickles/deepcopies small and avoids
        # materialising per-structure copies of bank-shared tables.
        state = dict(self.__dict__)
        state["_power_tables"] = None
        return state

    def _nonzero_cells(
        self,
        weight: np.ndarray,
        dot: np.ndarray,
        fingerprint: np.ndarray,
    ) -> np.ndarray:
        """Row-major flat addresses of cells with any non-zero accumulator."""
        mask = (weight != 0) | (dot != 0) | (fingerprint != 0)
        return np.flatnonzero(mask.reshape(-1))

    def decode(self) -> Optional[Dict[int, int]]:
        """Recover the support, or None when the vector looks >s-sparse.

        Returns a dict mapping index to value.  ``None`` signals that at
        least one cell held a collision that no other row resolved, i.e.
        recovery failed (either true sparsity exceeded ``s`` or the
        structure was unlucky — probability <= ``delta``).

        Decoding is a pure function of the accumulator planes, so the
        result is memoized and served until the next update or merge
        dirties the structure (callers get an independent dict copy).
        The non-zero-cell scan and degree-1 classification are
        vectorized; only the rare peeling fallback walks cells one by
        one.
        """
        if not self._dirty and self._decode_cached:
            return None if self._decode_cache is None else dict(self._decode_cache)
        result = self._decode_impl()
        self._decode_cache = result
        self._decode_cached = True
        self._dirty = False
        return None if result is None else dict(result)

    def _decode_impl(self) -> Optional[Dict[int, int]]:
        """One uncached decode pass (see :meth:`decode`).

        Classifies every non-zero cell with vectorized arithmetic that
        mirrors :func:`_decode_cell` exactly: NumPy's int64 floored
        ``//``/``%`` match Python's for negative weights, and the
        candidate fingerprint ``(weight * r^index) mod p`` is formed
        from the canonical residue of ``weight`` — so the recovered
        set, its insertion order (ascending flat cell address) and the
        collision verdict are all bit-identical to the per-cell loop.
        """
        live = self._nonzero_cells(self._weight, self._dot, self._fingerprint)
        recovered: Dict[int, int] = {}
        if len(live) == 0:
            return recovered
        weight = self._weight.reshape(-1)[live]
        dot = self._dot.reshape(-1)[live]
        fingerprint = self._fingerprint.reshape(-1)[live]
        nonzero = weight != 0
        index = np.zeros(len(live), dtype=np.int64)
        candidate = np.zeros(len(live), dtype=bool)
        index[nonzero] = dot[nonzero] // weight[nonzero]
        candidate[nonzero] = dot[nonzero] % weight[nonzero] == 0
        candidate &= (index >= 0) & (index < self.dim)
        one_sparse = np.zeros(len(live), dtype=bool)
        if candidate.any():
            expected = mulmod_p61(
                np.remainder(weight[candidate], PRIME_61).astype(np.uint64),
                powmod_p61(
                    self._r.reshape(-1)[live[candidate]],
                    index[candidate].astype(np.uint64),
                ),
            )
            one_sparse[candidate] = expected == fingerprint[candidate]
        for cell_index, cell_value in zip(
            index[one_sparse].tolist(), weight[one_sparse].tolist()
        ):
            recovered[cell_index] = cell_value
        if bool(one_sparse.all()):
            return recovered
        # Collisions may be resolvable: peel recovered coordinates and
        # re-check.  We verify by re-simulating cell contents.
        return self._decode_with_peeling(recovered)

    def _decode_with_peeling(self, seed: Dict[int, int]) -> Optional[Dict[int, int]]:
        """Subtract known coordinates and retry collided cells.

        Classic peeling: any coordinate recovered in one row can be
        removed from every other row, possibly turning collision cells
        into 1-sparse cells.  Operates on copies; the structure itself is
        not mutated.
        """
        weight = self._weight.copy().reshape(-1)
        dot = self._dot.copy().reshape(-1)
        fingerprint = self._fingerprint.copy().reshape(-1)
        r = self._r.reshape(-1)

        def rescan():
            for cell in self._nonzero_cells(
                weight.reshape(self._weight.shape),
                dot.reshape(self._dot.shape),
                fingerprint.reshape(self._fingerprint.shape),
            ):
                yield _decode_cell(
                    int(weight[cell]),
                    int(dot[cell]),
                    int(fingerprint[cell]),
                    int(r[cell]),
                    self.dim,
                )

        recovered = dict(seed)
        frontier = list(seed.items())
        while frontier:
            index, value = frontier.pop()
            for row, hash_function in enumerate(self._hashes):
                cell = row * self.n_buckets + hash_function(index)
                weight[cell] -= value
                dot[cell] -= index * value
                fingerprint[cell] = (
                    int(fingerprint[cell])
                    - value * pow(int(r[cell]), index, PRIME_61)
                ) % PRIME_61
            for result in rescan():
                if (
                    result.state is CellState.ONE_SPARSE
                    and result.index not in recovered
                ):
                    recovered[result.index] = result.value
                    frontier.append((result.index, result.value))
        for result in rescan():
            if result.state is CellState.COLLISION:
                return None
            if result.state is CellState.ONE_SPARSE and result.index not in recovered:
                recovered[result.index] = result.value
        return recovered

    def space_words(self) -> int:
        """Cells (4 words each: three accumulators plus the fingerprint
        base) plus one hash function per row."""
        cell_words = 4 * self.n_rows * self.n_buckets
        hash_words = sum(h.space_words() for h in self._hashes)
        return cell_words + hash_words
