"""s-sparse recovery by hashing into 1-sparse cells.

An :class:`SSparseRecovery` structure recovers the full support of an
implicit vector provided the support size is at most ``s``.  It hashes
each index into ``2s`` buckets per row across ``rows`` independent rows
of 1-sparse cells; a coordinate is recovered whenever it lands alone in
some bucket in some row.  With ``rows = O(log(s/delta))`` all coordinates
are recovered with probability ``1 - delta`` (each coordinate collides
in one row with probability <= 1/2).

This is the standard building block used by ℓ₀-samplers to recover the
coordinates surviving level-wise subsampling.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

import numpy as np

from repro.sketch.hashing import KWiseHash, random_kwise
from repro.sketch.onesparse import CellState, OneSparseCell


class SSparseRecovery:
    """Recover vectors of support size at most ``s``.

    Args:
        dim: dimension of the implicit vector.
        s: target sparsity.
        delta: failure probability bound for full-support recovery.
        rng: randomness source for hash functions and fingerprints.
    """

    def __init__(self, dim: int, s: int, delta: float, rng: random.Random) -> None:
        if s <= 0:
            raise ValueError(f"s must be positive, got {s}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        self.dim = dim
        self.s = s
        self.delta = delta
        self.n_buckets = 2 * s
        self.n_rows = max(1, math.ceil(math.log2(max(s, 2) / delta)))
        self._hashes: List[KWiseHash] = [
            random_kwise(2, self.n_buckets, rng) for _ in range(self.n_rows)
        ]
        self._cells: List[List[OneSparseCell]] = [
            [OneSparseCell(dim, rng) for _ in range(self.n_buckets)]
            for _ in range(self.n_rows)
        ]

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``."""
        if not 0 <= index < self.dim:
            raise ValueError(f"index {index} out of range [0, {self.dim})")
        for hash_function, row in zip(self._hashes, self._cells):
            row[hash_function(index)].update(index, delta)

    def update_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of signed updates.

        Bucket positions for all items are computed with one vectorized
        hash evaluation per row — the dominant cost of the scalar path —
        before the (linear) 1-sparse cells absorb their updates.  Final
        state matches item-by-item updates exactly.
        """
        if len(indices) == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.dim:
            bad = indices[(indices < 0) | (indices >= self.dim)][0]
            raise ValueError(f"index {int(bad)} out of range [0, {self.dim})")
        index_list = indices.tolist()
        delta_list = deltas.tolist()
        for hash_function, row in zip(self._hashes, self._cells):
            buckets = hash_function.batch(indices).tolist()
            for bucket, index, delta in zip(buckets, index_list, delta_list):
                row[bucket].update(index, delta)

    def merge(self, other: "SSparseRecovery") -> "SSparseRecovery":
        """Cell-wise sum of two recoveries over disjoint sub-streams.

        Valid only for structures split from the same seeded instance
        (identical row hashes); every cell is linear, so the merged
        structure equals the single-pass structure exactly.
        """
        if (
            not isinstance(other, SSparseRecovery)
            or (self.dim, self.s, self.n_rows) != (other.dim, other.s, other.n_rows)
        ):
            raise ValueError(
                "cannot merge incompatible s-sparse recoveries; split both "
                "from the same seeded structure"
            )
        for mine, theirs in zip(self._hashes, other._hashes):
            if mine.coefficients != theirs.coefficients:
                raise ValueError(
                    "cannot merge s-sparse recoveries with different row "
                    "hashes; split both from the same seeded structure"
                )
        for my_row, their_row in zip(self._cells, other._cells):
            for my_cell, their_cell in zip(my_row, their_row):
                my_cell.merge(their_cell)
        return self

    def decode(self) -> Optional[Dict[int, int]]:
        """Recover the support, or None when the vector looks >s-sparse.

        Returns a dict mapping index to value.  ``None`` signals that at
        least one cell held a collision that no other row resolved, i.e.
        recovery failed (either true sparsity exceeded ``s`` or the
        structure was unlucky — probability <= ``delta``).
        """
        recovered: Dict[int, int] = {}
        saw_collision = False
        for row in self._cells:
            for cell in row:
                result = cell.decode()
                if result.state is CellState.ONE_SPARSE:
                    recovered[result.index] = result.value
                elif result.state is CellState.COLLISION:
                    saw_collision = True
        if not saw_collision:
            return recovered
        # Collisions may be resolvable: peel recovered coordinates and
        # re-check.  We verify by re-simulating cell contents.
        return self._decode_with_peeling(recovered)

    def _decode_with_peeling(self, seed: Dict[int, int]) -> Optional[Dict[int, int]]:
        """Subtract known coordinates and retry collided cells.

        Classic peeling: any coordinate recovered in one row can be
        removed from every other row, possibly turning collision cells
        into 1-sparse cells.  Operates on copies; the structure itself is
        not mutated.
        """
        shadow: List[List[OneSparseCell]] = []
        rng = random.Random(0)
        for row_index, row in enumerate(self._cells):
            shadow_row = []
            for cell in row:
                clone = OneSparseCell(self.dim, rng)
                clone._r = cell._r
                clone._weight = cell._weight
                clone._dot = cell._dot
                clone._fingerprint = cell._fingerprint
                shadow_row.append(clone)
            shadow.append(shadow_row)

        recovered = dict(seed)
        frontier = list(seed.items())
        while frontier:
            index, value = frontier.pop()
            for hash_function, row in zip(self._hashes, shadow):
                cell = row[hash_function(index)]
                cell.update(index, -value)
            for row in shadow:
                for cell in row:
                    result = cell.decode()
                    if (
                        result.state is CellState.ONE_SPARSE
                        and result.index not in recovered
                    ):
                        recovered[result.index] = result.value
                        frontier.append((result.index, result.value))
        for row in shadow:
            for cell in row:
                result = cell.decode()
                if result.state is CellState.COLLISION:
                    return None
                if result.state is CellState.ONE_SPARSE and result.index not in recovered:
                    recovered[result.index] = result.value
        return recovered

    def space_words(self) -> int:
        """Cells plus one hash function per row."""
        cell_words = sum(
            cell.space_words() for row in self._cells for cell in row
        )
        hash_words = sum(h.space_words() for h in self._hashes)
        return cell_words + hash_words
