"""Exact counting structures.

:class:`DegreeCounter` is the degree-tracking component both FEwW
algorithms charge ``O(n log n)`` bits for.  :class:`ExactSupport`
maintains the exact support of a signed vector; it serves as the ground
truth oracle in tests and as the backing store of the "fast" ℓ₀-sampler
bank mode (see :mod:`repro.sketch.l0`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np


class DegreeCounter:
    """Exact per-A-vertex degree counts.

    The paper's algorithms maintain the degree of every A-vertex, space
    ``O(n log n)`` bits.  We charge one word per vertex regardless of how
    many are non-zero, matching that accounting.  The table is a NumPy
    array so batch ingestion can update it with one scatter-add.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._degrees = np.zeros(n, dtype=np.int64)

    def increment(self, a: int, delta: int = 1) -> int:
        """Adjust vertex ``a``'s degree and return the new value."""
        if not 0 <= a < self.n:
            raise ValueError(f"vertex {a} out of range [0, {self.n})")
        self._degrees[a] += delta
        degree = int(self._degrees[a])
        if degree < 0:
            raise ValueError(f"degree of vertex {a} went negative")
        return degree

    def increment_batch(self, a: np.ndarray, grouping=None) -> np.ndarray:
        """Count a batch of insertions; return each item's post-increment degree.

        ``a`` holds one A-vertex per inserted edge.  The degree table is
        updated with a single ``np.add.at`` scatter, and the returned
        array matches what ``increment`` would have returned item by item:
        degree before the batch, plus one, plus the number of earlier
        batch occurrences of the same vertex.  ``grouping`` optionally
        passes a precomputed ``(order, starts, ends)`` stable grouping of
        ``a`` (see :func:`repro.streams.columnar.group_slices`) so
        callers that already grouped the chunk don't sort twice.
        """
        if len(a) == 0:
            return np.zeros(0, dtype=np.int64)
        if int(a.min()) < 0 or int(a.max()) >= self.n:
            bad = a[(a < 0) | (a >= self.n)][0]
            raise ValueError(f"vertex {int(bad)} out of range [0, {self.n})")
        before = self._degrees[a]
        if grouping is None:
            # Deferred import: sketch is a lower layer than streams and
            # must not depend on it at module-import time.
            from repro.streams.columnar import group_slices

            grouping = group_slices(a)
        order, starts, ends = grouping
        ranks = np.arange(len(a), dtype=np.int64) - np.repeat(starts, ends - starts)
        ordinals = np.empty(len(a), dtype=np.int64)
        ordinals[order] = ranks
        if self.n <= 4 * len(a):
            # bincount-and-add beats np.add.at's per-element dispatch
            # whenever the table isn't much larger than the batch.
            self._degrees += np.bincount(a, minlength=self.n)
        else:
            np.add.at(self._degrees, a, 1)
        return before + ordinals + 1

    def degree(self, a: int) -> int:
        """Current degree of vertex ``a``."""
        if not 0 <= a < self.n:
            raise ValueError(f"vertex {a} out of range [0, {self.n})")
        return int(self._degrees[a])

    def vertices_with_degree_at_least(self, threshold: int) -> List[int]:
        """All vertices of current degree >= threshold (ascending ids)."""
        return np.flatnonzero(self._degrees >= threshold).tolist()

    def max_degree(self) -> int:
        """Largest current degree."""
        return int(self._degrees.max())

    def clone(self) -> "DegreeCounter":
        """An independent copy — one array copy, no deepcopy graph walk
        (window policies clone summaries on every probe/suffix fold)."""
        dup = object.__new__(DegreeCounter)
        dup.n = self.n
        dup._degrees = self._degrees.copy()
        return dup

    def merge(self, other: "DegreeCounter") -> "DegreeCounter":
        """Element-wise sum of two counters over disjoint sub-streams.

        Degrees are linear in the updates, so the merged table equals the
        single-pass table bit for bit regardless of how the stream was
        partitioned.
        """
        if not isinstance(other, DegreeCounter):
            raise ValueError(
                f"cannot merge DegreeCounter with {type(other).__name__}"
            )
        if self.n != other.n:
            raise ValueError(
                f"cannot merge DegreeCounter over n={self.n} with n={other.n}"
            )
        self._degrees += other._degrees
        return self

    def space_words(self) -> int:
        """One counter word per A-vertex."""
        return self.n


#: Consolidate pending batch columns once their total length passes this
#: (bounds buffered memory on long query-free streams).
_FLUSH_PENDING = 1 << 18


class ExactSupport:
    """Exact support of a signed integer vector under updates.

    Used as the verification oracle for sketches and as the backing
    state of the accelerated ℓ₀-sampler bank.  Not space-metered: it is
    simulator state, never charged to a streaming algorithm.

    Batch updates are *deferred*: :meth:`update_batch` only appends the
    (validated, copied) coordinate and delta columns to a pending list,
    and every read path consolidates them with one vectorized
    ``np.unique`` + scatter-add netting pass.  The vector is linear in
    its updates, so deferring and netting cannot change any final value;
    the consolidated state is identical to applying ``update`` item by
    item.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._store: Dict[int, int] = {}
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self._pending_len = 0

    @property
    def _values(self) -> Dict[int, int]:
        """The consolidated coordinate → value dict (flushes pending)."""
        if self._pending:
            self._flush()
        return self._store

    def _flush(self) -> None:
        """Net every pending batch into the consolidated dict at once."""
        pending = self._pending
        self._pending = []
        self._pending_len = 0
        coords = [column for column, _ in pending]
        nets = [column for _, column in pending]
        store = self._store
        if store:
            coords.append(np.fromiter(store.keys(), np.int64, len(store)))
            nets.append(np.fromiter(store.values(), np.int64, len(store)))
        unique, inverse = np.unique(np.concatenate(coords), return_inverse=True)
        total = np.zeros(len(unique), dtype=np.int64)
        np.add.at(total, inverse, np.concatenate(nets))
        live = total != 0
        self._store = dict(zip(unique[live].tolist(), total[live].tolist()))

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``, dropping zeros."""
        if not 0 <= index < self.dim:
            raise ValueError(f"index {index} out of range [0, {self.dim})")
        if self._pending:
            self._flush()
        new_value = self._store.get(index, 0) + delta
        if new_value == 0:
            self._store.pop(index, None)
        else:
            self._store[index] = new_value

    def update_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Queue a batch of signed updates (validated, then deferred).

        The columns are copied before buffering, so callers may hand in
        views of reused chunk buffers (e.g. shared-memory segments).
        """
        if len(indices) == 0:
            return
        indices = np.asarray(indices)
        if int(indices.min()) < 0 or int(indices.max()) >= self.dim:
            bad = indices[(indices < 0) | (indices >= self.dim)][0]
            raise ValueError(f"index {int(bad)} out of range [0, {self.dim})")
        self._pending.append(
            (
                np.array(indices, dtype=np.int64),
                np.array(np.asarray(deltas), dtype=np.int64),
            )
        )
        self._pending_len += len(indices)
        if self._pending_len >= _FLUSH_PENDING:
            self._flush()

    def merge(self, other: "ExactSupport") -> "ExactSupport":
        """Coordinate-wise sum of two supports over disjoint sub-streams.

        The tracked vector is linear, so the merged support equals the
        support of the concatenated update stream exactly (cancellations
        across shards drop out here, at merge time).
        """
        if not isinstance(other, ExactSupport):
            raise ValueError(
                f"cannot merge ExactSupport with {type(other).__name__}"
            )
        if self.dim != other.dim:
            raise ValueError(
                f"cannot merge ExactSupport over dim={self.dim} with "
                f"dim={other.dim}"
            )
        for index, value in other._values.items():
            self.update(index, value)
        return self

    def support(self) -> List[int]:
        """Sorted list of non-zero coordinates."""
        return sorted(self._values)

    def support_size(self) -> int:
        return len(self._values)

    def value(self, index: int) -> int:
        return self._values.get(index, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._values.items())

    def __contains__(self, index: int) -> bool:
        return index in self._values
