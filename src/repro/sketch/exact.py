"""Exact counting structures.

:class:`DegreeCounter` is the degree-tracking component both FEwW
algorithms charge ``O(n log n)`` bits for.  :class:`ExactSupport`
maintains the exact support of a signed vector; it serves as the ground
truth oracle in tests and as the backing store of the "fast" ℓ₀-sampler
bank mode (see :mod:`repro.sketch.l0`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class DegreeCounter:
    """Exact per-A-vertex degree counts.

    The paper's algorithms maintain the degree of every A-vertex, space
    ``O(n log n)`` bits.  We charge one word per vertex regardless of how
    many are non-zero, matching that accounting.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._degrees: List[int] = [0] * n

    def increment(self, a: int, delta: int = 1) -> int:
        """Adjust vertex ``a``'s degree and return the new value."""
        if not 0 <= a < self.n:
            raise ValueError(f"vertex {a} out of range [0, {self.n})")
        self._degrees[a] += delta
        if self._degrees[a] < 0:
            raise ValueError(f"degree of vertex {a} went negative")
        return self._degrees[a]

    def degree(self, a: int) -> int:
        """Current degree of vertex ``a``."""
        if not 0 <= a < self.n:
            raise ValueError(f"vertex {a} out of range [0, {self.n})")
        return self._degrees[a]

    def vertices_with_degree_at_least(self, threshold: int) -> List[int]:
        """All vertices of current degree >= threshold (ascending ids)."""
        return [a for a, degree in enumerate(self._degrees) if degree >= threshold]

    def max_degree(self) -> int:
        """Largest current degree."""
        return max(self._degrees)

    def space_words(self) -> int:
        """One counter word per A-vertex."""
        return self.n


class ExactSupport:
    """Exact support of a signed integer vector under updates.

    Used as the verification oracle for sketches and as the backing
    state of the accelerated ℓ₀-sampler bank.  Not space-metered: it is
    simulator state, never charged to a streaming algorithm.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._values: Dict[int, int] = {}

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``, dropping zeros."""
        if not 0 <= index < self.dim:
            raise ValueError(f"index {index} out of range [0, {self.dim})")
        new_value = self._values.get(index, 0) + delta
        if new_value == 0:
            self._values.pop(index, None)
        else:
            self._values[index] = new_value

    def support(self) -> List[int]:
        """Sorted list of non-zero coordinates."""
        return sorted(self._values)

    def support_size(self) -> int:
        return len(self._values)

    def value(self, index: int) -> int:
        return self._values.get(index, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._values.items())

    def __contains__(self, index: int) -> bool:
        return index in self._values
