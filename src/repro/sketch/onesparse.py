"""1-sparse recovery cells.

A 1-sparse recovery cell processes signed updates ``(index, delta)`` to
an implicit vector and can, at query time, decide whether the vector is
exactly 1-sparse (support size one) and if so return the index and value
of the single non-zero coordinate.

The cell stores three accumulators:

* ``weight``  = sum of deltas,
* ``dot``     = sum of ``index * delta``,
* ``fingerprint`` = sum of ``delta * r^index`` in GF(p) for a random r.

If the vector is 1-sparse with support ``{i}`` and value ``w``, then
``weight = w``, ``dot = i * w``, and the fingerprint equals
``w * r^i``.  The fingerprint test catches vectors that merely *look*
1-sparse on the first two accumulators; a false positive requires the
random ``r`` to be a root of a non-zero polynomial of degree <= dim,
probability <= dim / p (Schwartz–Zippel).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.sketch.hashing import PRIME_61


class CellState(Enum):
    """Decoded state of a 1-sparse cell."""

    ZERO = "zero"
    ONE_SPARSE = "one-sparse"
    COLLISION = "collision"


@dataclass(frozen=True)
class OneSparseResult:
    """Decoded contents of a cell: state and, when 1-sparse, (index, value)."""

    state: CellState
    index: Optional[int] = None
    value: Optional[int] = None


class OneSparseCell:
    """A single 1-sparse recovery cell over vectors of dimension ``dim``.

    Args:
        dim: dimension of the implicit vector; indices must lie in
            ``[0, dim)``.
        rng: source of randomness for the fingerprint base.
    """

    __slots__ = ("dim", "_r", "_weight", "_dot", "_fingerprint")

    def __init__(self, dim: int, rng: random.Random) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._r = rng.randrange(2, PRIME_61)
        self._weight = 0
        self._dot = 0
        self._fingerprint = 0

    def update(self, index: int, delta: int) -> None:
        """Apply ``vector[index] += delta``."""
        if not 0 <= index < self.dim:
            raise ValueError(f"index {index} out of range [0, {self.dim})")
        self._weight += delta
        self._dot += index * delta
        self._fingerprint = (
            self._fingerprint + delta * pow(self._r, index, PRIME_61)
        ) % PRIME_61

    def decode(self) -> OneSparseResult:
        """Classify the cell and recover the coordinate when 1-sparse."""
        if self._weight == 0 and self._dot == 0 and self._fingerprint == 0:
            return OneSparseResult(CellState.ZERO)
        if self._weight != 0 and self._dot % self._weight == 0:
            index = self._dot // self._weight
            if 0 <= index < self.dim:
                expected = (self._weight * pow(self._r, index, PRIME_61)) % PRIME_61
                if expected == self._fingerprint:
                    return OneSparseResult(CellState.ONE_SPARSE, index, self._weight)
        return OneSparseResult(CellState.COLLISION)

    def merge(self, other: "OneSparseCell") -> "OneSparseCell":
        """Accumulator-wise sum of two cells over disjoint sub-streams.

        Valid only for cells sharing the same fingerprint base ``r``
        (i.e. split from one seeded structure); the merged cell equals
        the cell of the concatenated update stream exactly.
        """
        if self.dim != other.dim or self._r != other._r:
            raise ValueError(
                "cannot merge 1-sparse cells with different dimensions or "
                "fingerprint bases; split both from the same seeded structure"
            )
        self._weight += other._weight
        self._dot += other._dot
        self._fingerprint = (self._fingerprint + other._fingerprint) % PRIME_61
        return self

    def is_zero(self) -> bool:
        """True when every accumulator is zero (vector certainly empty... or
        an exact cancellation, probability <= dim/p)."""
        return self._weight == 0 and self._dot == 0 and self._fingerprint == 0

    def space_words(self) -> int:
        """Three accumulators plus the fingerprint base."""
        return 4
