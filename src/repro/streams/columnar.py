"""Columnar edge streams: the batch ingestion backbone.

:class:`ColumnarEdgeStream` stores an update sequence as three parallel
NumPy arrays — ``a`` (A-endpoints), ``b`` (B-endpoints) and ``sign``
(+1 insert / -1 delete) — instead of a list of boxed
:class:`~repro.streams.edge.StreamItem` objects.  Algorithms consume it
through zero-copy chunk views (:meth:`ColumnarEdgeStream.chunks`) and
their ``process_batch(a, b, sign)`` methods, which replaces millions of
per-item Python calls with a handful of vectorized array operations.

Conversion to and from :class:`~repro.streams.stream.EdgeStream` is
lossless, and validation enforces exactly the same simple-graph
discipline in a single vectorized pass: per edge, the sign subsequence
must alternate ``+1, -1, +1, ...`` starting with an insert (no duplicate
insert of a live edge, no delete of an absent edge).

Use :class:`ColumnarEdgeStream` for throughput-critical ingestion and
large generated workloads; use :class:`EdgeStream` when you need the
per-item object API (transforms, persistence, adapters) or tiny
hand-written streams.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.stream import EdgeStream, InvalidStreamError, StreamStats

#: Default number of updates per chunk handed to ``process_batch``.
DEFAULT_CHUNK_SIZE = 8192

Columns = Tuple[np.ndarray, np.ndarray, np.ndarray]


def occurrence_ordinals(values: np.ndarray) -> np.ndarray:
    """Per-position count of earlier occurrences of the same value.

    ``occurrence_ordinals([5, 3, 5, 5, 3]) == [0, 0, 1, 2, 1]``.  This is
    the primitive that lets batch degree counting recover every item's
    *post-increment* degree without a sequential pass: the degree of
    ``a[i]`` after update ``i`` is its degree before the batch plus
    ``ordinal[i] + 1``.
    """
    order, starts, ends = group_slices(values)
    ranks = np.arange(len(values), dtype=np.int64) - np.repeat(
        starts, ends - starts
    )
    ordinals = np.empty(len(values), dtype=np.int64)
    ordinals[order] = ranks
    return ordinals


def group_slices(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable grouping of positions by value.

    Returns ``(order, starts, ends)`` where ``order`` is a stable argsort
    of ``values`` and ``[starts[g], ends[g])`` delimits group ``g`` inside
    it.  Within a group, ``order`` preserves stream (arrival) order — the
    property batch witness collection relies on.
    """
    n_items = len(values)
    if n_items == 0:
        order = np.argsort(values, kind="stable")
        zero = np.zeros(1, dtype=np.int64)
        return order, zero, zero.copy()
    if values.dtype == np.int64 and int(values.min()) >= 0 and int(values.max()) < (1 << 16):
        # Narrow-cast radix argsort: stable like the 64-bit path (equal
        # keys keep arrival order under numpy's radix sort) but several
        # times faster at the engine's per-sub-batch call rate, and
        # vertex columns almost always fit in 16 bits.
        order = np.argsort(values.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    # Boundary mask built in place — np.r_'s index-trick parsing is
    # measurable overhead at the engine's per-sub-batch call rate.
    boundary = np.empty(n_items, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    ends = np.empty(len(starts), dtype=starts.dtype)
    ends[:-1] = starts[1:]
    ends[-1] = n_items
    return order, starts, ends


class ColumnarEdgeStream:
    """A signed edge-update sequence stored as NumPy columns.

    Args:
        a: A-endpoints, one per update (any integer array-like).
        b: B-endpoints, one per update.
        sign: +1/-1 per update; ``None`` means insertion-only.
        n: number of A-vertices (identifiers must lie in ``[0, n)``).
        m: number of B-vertices (identifiers must lie in ``[0, m)``).
        t: optional per-update event timestamps (int64, monotonically
            non-decreasing).  Timestamps ride along the stream — they
            persist in the v2.1 columnar format and feed event-time
            tooling — but are not part of the ``(a, b, sign)`` chunk
            protocol the engine hands to ``process_batch``.
        validate: when True (default), run the vectorized single-pass
            range and simple-graph-discipline checks (including
            timestamp monotonicity when ``t`` is given).
    """

    def __init__(
        self,
        a,
        b,
        sign=None,
        *,
        n: int,
        m: int,
        t=None,
        validate: bool = True,
    ) -> None:
        if n <= 0 or m <= 0:
            raise ValueError(f"n and m must be positive, got n={n}, m={m}")
        self.a = np.ascontiguousarray(a, dtype=np.int64)
        self.b = np.ascontiguousarray(b, dtype=np.int64)
        if self.a.shape != self.b.shape or self.a.ndim != 1:
            raise ValueError(
                f"a and b must be 1-d arrays of equal length, got "
                f"shapes {self.a.shape} and {self.b.shape}"
            )
        if sign is None:
            self.sign = np.full(len(self.a), INSERT, dtype=np.int64)
        else:
            self.sign = np.ascontiguousarray(sign, dtype=np.int64)
            if self.sign.shape != self.a.shape:
                raise ValueError(
                    f"sign must match a/b length, got shape {self.sign.shape}"
                )
        if t is None:
            self.t = None
        else:
            self.t = np.ascontiguousarray(t, dtype=np.int64)
            if self.t.shape != self.a.shape:
                raise ValueError(
                    f"t must match a/b length, got shape {self.t.shape}"
                )
        self.n = n
        self.m = m
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Vectorized validation.
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        a, b, sign = self.a, self.b, self.sign
        bad = np.flatnonzero((a < 0) | (a >= self.n))
        if len(bad):
            position = int(bad[0])
            raise InvalidStreamError(
                f"update {position}: A-vertex {int(a[position])} out of "
                f"range [0, {self.n})"
            )
        bad = np.flatnonzero((b < 0) | (b >= self.m))
        if len(bad):
            position = int(bad[0])
            raise InvalidStreamError(
                f"update {position}: B-vertex {int(b[position])} out of "
                f"range [0, {self.m})"
            )
        bad = np.flatnonzero((sign != INSERT) & (sign != DELETE))
        if len(bad):
            position = int(bad[0])
            raise InvalidStreamError(
                f"update {position}: sign must be +1 or -1, got "
                f"{int(sign[position])}"
            )
        if self.t is not None and len(self.t) > 1:
            bad = np.flatnonzero(np.diff(self.t) < 0)
            if len(bad):
                position = int(bad[0]) + 1
                raise InvalidStreamError(
                    f"update {position}: timestamp {int(self.t[position])} "
                    f"decreases below preceding "
                    f"{int(self.t[position - 1])} (event time must be "
                    f"monotonically non-decreasing)"
                )
        if len(a) == 0:
            return
        # Simple-graph discipline: per edge, the sign subsequence (in
        # stream order) must alternate +1, -1, +1, ...  A stable sort by
        # flattened edge id preserves stream order within each edge, so
        # the ordinal parity of every update must match its sign.
        flat = a * self.m + b
        order, starts, _ = group_slices(flat)
        lengths = np.diff(np.r_[starts, len(flat)])
        ranks = np.arange(len(flat), dtype=np.int64) - np.repeat(starts, lengths)
        expected = np.where(ranks % 2 == 0, INSERT, DELETE)
        bad = np.flatnonzero(self.sign[order] != expected)
        if len(bad):
            position = int(order[bad[0]])
            edge = Edge(int(a[position]), int(b[position]))
            if int(sign[position]) == INSERT:
                raise InvalidStreamError(
                    f"update {position}: duplicate insert of live edge {edge}"
                )
            raise InvalidStreamError(
                f"update {position}: delete of absent edge {edge}"
            )

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.a)

    def __getitem__(self, index: int) -> StreamItem:
        return StreamItem(
            Edge(int(self.a[index]), int(self.b[index])), int(self.sign[index])
        )

    def __iter__(self) -> Iterator[StreamItem]:
        for a, b, sign in zip(self.a.tolist(), self.b.tolist(), self.sign.tolist()):
            yield StreamItem(Edge(a, b), sign)

    @property
    def insertion_only(self) -> bool:
        """True when the stream contains no deletions."""
        return bool((self.sign == INSERT).all())

    @property
    def has_timestamps(self) -> bool:
        """True when the stream carries an event-time column."""
        return self.t is not None

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[Columns]:
        """Zero-copy iteration over ``(a, b, sign)`` column slices."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self.a), chunk_size):
            stop = start + chunk_size
            yield self.a[start:stop], self.b[start:stop], self.sign[start:stop]

    # ------------------------------------------------------------------
    # Lossless conversion.
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_stream(cls, stream: EdgeStream) -> "ColumnarEdgeStream":
        """Column-store copy of an :class:`EdgeStream` (already validated)."""
        a = np.fromiter((item.edge.a for item in stream), dtype=np.int64, count=len(stream))
        b = np.fromiter((item.edge.b for item in stream), dtype=np.int64, count=len(stream))
        sign = np.fromiter((item.sign for item in stream), dtype=np.int64, count=len(stream))
        return cls(a, b, sign, n=stream.n, m=stream.m, validate=False)

    def to_edge_stream(self) -> EdgeStream:
        """Boxed copy as an :class:`EdgeStream` (skips re-validation).

        :class:`~repro.streams.edge.StreamItem` carries no event time,
        so the timestamp column (if any) does not survive the trip.
        """
        items = [
            StreamItem(Edge(a, b), sign)
            for a, b, sign in zip(
                self.a.tolist(), self.b.tolist(), self.sign.tolist()
            )
        ]
        return EdgeStream(items, self.n, self.m, validate=False)

    def concatenate(self, other: "ColumnarEdgeStream") -> "ColumnarEdgeStream":
        """Concatenate two columnar streams over compatible vertex sets.

        Timestamped streams concatenate only with timestamped streams
        (validation then enforces monotonicity across the seam);
        mixing a timestamped stream with an untimestamped one raises.
        """
        if (self.n, self.m) != (other.n, other.m):
            raise ValueError(
                f"incompatible dimensions: ({self.n},{self.m}) vs "
                f"({other.n},{other.m})"
            )
        if self.has_timestamps != other.has_timestamps:
            raise ValueError(
                "cannot concatenate a timestamped stream with an "
                "untimestamped one"
            )
        return ColumnarEdgeStream(
            np.concatenate([self.a, other.a]),
            np.concatenate([self.b, other.b]),
            np.concatenate([self.sign, other.sign]),
            n=self.n,
            m=self.m,
            t=(
                np.concatenate([self.t, other.t])
                if self.has_timestamps
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Reference (ground-truth) helpers, vectorized.
    # ------------------------------------------------------------------

    def final_degrees(self) -> dict:
        """Final degree of every A-vertex with at least one edge."""
        degrees = self._degree_vector()
        nonzero = np.flatnonzero(degrees)
        return dict(zip(nonzero.tolist(), degrees[nonzero].tolist()))

    def _degree_vector(self) -> np.ndarray:
        # Discipline guarantees each edge's net sign is 0 or 1, so a
        # vertex's final degree is the sum of the signs of its updates.
        return np.bincount(
            self.a, weights=self.sign, minlength=self.n
        ).astype(np.int64)

    def max_degree(self) -> int:
        """Largest final A-vertex degree (0 for the empty graph)."""
        if len(self.a) == 0:
            return 0
        return int(self._degree_vector().max())

    def stats(self) -> StreamStats:
        """Full summary statistics of the final graph (vectorized)."""
        degrees = self._degree_vector()
        b_degrees = np.bincount(self.b, weights=self.sign, minlength=self.m)
        n_inserts = int((self.sign == INSERT).sum())
        max_deg = int(degrees.max()) if len(self.a) else 0
        # Smallest vertex id among the maxima, matching EdgeStream.stats.
        max_vertex = int(degrees.argmax()) if max_deg > 0 else -1
        return StreamStats(
            n_updates=len(self.a),
            n_inserts=n_inserts,
            n_deletes=len(self.a) - n_inserts,
            n_edges_final=int(self.sign.sum()),
            n_a_vertices=int((degrees > 0).sum()),
            n_b_vertices=int((b_degrees > 0).sum()),
            max_degree=max_deg,
            max_degree_vertex=max_vertex,
        )


def process_columnar(
    algorithm,
    stream: ColumnarEdgeStream,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
):
    """Drive any structure exposing ``process_batch`` over a columnar stream.

    Feeds the stream chunk by chunk (zero-copy views) and returns the
    algorithm for chaining — the batch-mode counterpart of the
    ``algorithm.process(stream)`` idiom.
    """
    for a, b, sign in stream.chunks(chunk_size):
        algorithm.process_batch(a, b, sign)
    return algorithm
