"""Workload generators for every scenario used by tests and benchmarks.

All generators take an explicit ``rng`` (:class:`random.Random`) so runs
are reproducible, and return :class:`~repro.streams.stream.EdgeStream`
instances (or raw record logs for the application-level generators).

The planted generators are the primary benchmark workloads: they embed a
known heavy A-vertex so correctness (did the algorithm find a vertex of
degree >= d/alpha?) can be checked against ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.stream import EdgeStream


@dataclass(frozen=True)
class GeneratorConfig:
    """Common knobs shared by the graph generators.

    Attributes:
        n: number of A-vertices.
        m: number of B-vertices.
        seed: RNG seed; generators derive their own :class:`random.Random`.
        shuffle: when True, edge arrival order is randomised; when False,
            edges arrive grouped by A-vertex (an adversarial order for
            reservoir-style algorithms).
    """

    n: int
    m: int
    seed: int = 0
    shuffle: bool = True

    def rng(self) -> random.Random:
        return random.Random(self.seed)


def _finish(edges: List[Edge], config: GeneratorConfig) -> EdgeStream:
    """Deduplicate, optionally shuffle, and wrap edges into a stream."""
    unique = list(dict.fromkeys(edges))
    if config.shuffle:
        config.rng().shuffle(unique)
    items = [StreamItem(edge, INSERT) for edge in unique]
    return EdgeStream(items, config.n, config.m)


def planted_star_graph(
    config: GeneratorConfig,
    star_degree: int,
    star_vertex: int = 0,
    background_degree: int = 0,
) -> EdgeStream:
    """Graph with one known heavy A-vertex and uniform background noise.

    Args:
        config: dimensions and seed; requires ``config.m >= star_degree``.
        star_degree: degree planted on ``star_vertex``.
        star_vertex: which A-vertex receives the star.
        background_degree: every other A-vertex receives this many random
            distinct neighbours (must be < star_degree for the star to be
            the unique maximum).
    """
    if star_degree > config.m:
        raise ValueError(f"star_degree {star_degree} exceeds m={config.m}")
    if not 0 <= star_vertex < config.n:
        raise ValueError(f"star_vertex {star_vertex} out of range [0, {config.n})")
    if background_degree >= star_degree:
        raise ValueError(
            f"background_degree {background_degree} must be below star_degree {star_degree}"
        )
    rng = random.Random(config.seed + 1)
    edges = [Edge(star_vertex, b) for b in range(star_degree)]
    for a in range(config.n):
        if a == star_vertex or background_degree == 0:
            continue
        neighbours = rng.sample(range(config.m), background_degree)
        edges.extend(Edge(a, b) for b in neighbours)
    return _finish(edges, config)


def degree_cascade_graph(
    config: GeneratorConfig,
    d: int,
    alpha: int,
    ratio: float = 2.0,
) -> EdgeStream:
    """Geometric degree cascade stressing Algorithm 2's parallel runs.

    Builds, for each level ``i = alpha .. 0``, a block of A-vertices of
    degree ``max(1, i * d // alpha)``, where level ``i`` has roughly
    ``ratio`` times fewer vertices than level ``i-1`` (level ``alpha``
    always has exactly one vertex — the planted heavy element, A-vertex
    0).  This is the profile from Theorem 3.2's analysis in which the
    counts ``n_0 >= n_1 >= ... >= n_alpha >= 1`` all shrink by a bounded
    ratio, so *every* single-threshold run has only a modest success
    probability while the union of runs succeeds.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if d > config.m:
        raise ValueError(f"d={d} exceeds m={config.m}")
    rng = random.Random(config.seed + 2)
    edges: List[Edge] = []
    next_vertex = 0
    for level in range(alpha, -1, -1):
        depth = alpha - level
        block_size = max(1, round(ratio**depth))
        degree = max(1, level * d // alpha) if level > 0 else 1
        for _ in range(block_size):
            if next_vertex >= config.n:
                break
            neighbours = rng.sample(range(config.m), min(degree, config.m))
            edges.extend(Edge(next_vertex, b) for b in neighbours)
            next_vertex += 1
    return _finish(edges, config)


def random_bipartite_graph(config: GeneratorConfig, n_edges: int) -> EdgeStream:
    """Erdos–Renyi-style bipartite graph with ``n_edges`` distinct edges."""
    max_edges = config.n * config.m
    if n_edges > max_edges:
        raise ValueError(f"n_edges {n_edges} exceeds n*m = {max_edges}")
    rng = random.Random(config.seed + 3)
    flat = rng.sample(range(max_edges), n_edges)
    edges = [Edge.from_flat_index(index, config.m) for index in flat]
    return _finish(edges, config)


def zipf_frequency_stream(
    config: GeneratorConfig,
    n_records: int,
    exponent: float = 1.2,
) -> EdgeStream:
    """Item-frequency stream with Zipfian popularity and timestamp witnesses.

    A-vertex ``a`` is drawn with probability proportional to
    ``(a+1)**-exponent``; the witness of each record is its arrival index
    (a fresh B-vertex), matching the router-log motivation where
    witnesses are timestamps.  Requires ``config.m >= n_records``.
    """
    if n_records > config.m:
        raise ValueError(f"need m >= n_records, got m={config.m}, records={n_records}")
    rng = random.Random(config.seed + 4)
    weights = [(a + 1) ** (-exponent) for a in range(config.n)]
    choices = rng.choices(range(config.n), weights=weights, k=n_records)
    items = [StreamItem(Edge(a, t), INSERT) for t, a in enumerate(choices)]
    return EdgeStream(items, config.n, config.m)


def adversarial_interleaved_stream(
    config: GeneratorConfig,
    star_degree: int,
    n_decoys: int,
    decoy_degree: int,
) -> EdgeStream:
    """Order-adversarial stream: decoys reach the threshold before the star.

    ``n_decoys`` A-vertices each receive ``decoy_degree`` edges *first*,
    then the planted star (A-vertex 0) receives ``star_degree`` edges one
    by one, interleaved with nothing.  Reservoir-based algorithms see the
    heavy vertex cross every degree threshold last, after the reservoir
    is already full of decoys — the hardest arrival order for Algorithm 1.
    """
    total_b = n_decoys * decoy_degree + star_degree
    if total_b > config.m:
        raise ValueError(f"need m >= {total_b}, got m={config.m}")
    if n_decoys + 1 > config.n:
        raise ValueError(f"need n >= {n_decoys + 1}, got n={config.n}")
    edges: List[Edge] = []
    b = 0
    for decoy in range(1, n_decoys + 1):
        for _ in range(decoy_degree):
            edges.append(Edge(decoy, b))
            b += 1
    for _ in range(star_degree):
        edges.append(Edge(0, b))
        b += 1
    items = [StreamItem(edge, INSERT) for edge in edges]
    return EdgeStream(items, config.n, config.m)


def deletion_churn_stream(
    config: GeneratorConfig,
    star_degree: int,
    churn_edges: int,
    star_vertex: int = 0,
) -> EdgeStream:
    """Insertion-deletion stream whose churn cancels, leaving one star.

    First, ``churn_edges`` random background edges are inserted; then the
    star edges are inserted; then every background edge is deleted.  The
    final graph is exactly the planted star, but any algorithm that
    commits to early arrivals (e.g. plain reservoir sampling) retains
    deleted noise — this workload separates the insertion-only and
    insertion-deletion algorithms.
    """
    if star_degree > config.m:
        raise ValueError(f"star_degree {star_degree} exceeds m={config.m}")
    rng = random.Random(config.seed + 5)
    max_edges = config.n * config.m
    star_flat = {Edge(star_vertex, b).flat_index(config.m) for b in range(star_degree)}
    available = [index for index in range(max_edges) if index not in star_flat]
    churn = rng.sample(available, min(churn_edges, len(available)))
    churn_items = [StreamItem(Edge.from_flat_index(i, config.m), INSERT) for i in churn]
    star_items = [StreamItem(Edge(star_vertex, b), INSERT) for b in range(star_degree)]
    delete_items = [StreamItem(item.edge, DELETE) for item in churn_items]
    return EdgeStream(churn_items + star_items + delete_items, config.n, config.m)


# ----------------------------------------------------------------------
# Columnar generators: emit NumPy columns directly, never building a
# StreamItem list.  These are the batch-engine counterparts of the
# generators above — same workload shapes, array-native construction, so
# million-update streams materialise in milliseconds.
# ----------------------------------------------------------------------


def zipf_frequency_columnar(
    config: GeneratorConfig,
    n_records: int,
    exponent: float = 1.2,
    timestamps: bool = False,
) -> ColumnarEdgeStream:
    """Columnar counterpart of :func:`zipf_frequency_stream`.

    Same workload shape — Zipfian A-vertex popularity, arrival-index
    witnesses — built directly as columns with NumPy sampling (its own
    seeded generator, so trajectories are reproducible but not update-
    for-update identical to the list-based generator).

    With ``timestamps=True`` the stream carries an event-time column:
    strictly increasing integer timestamps with random inter-arrival
    gaps (drawn after the endpoints, so the ``a``/``b`` trajectory for
    a given seed is unchanged by the flag).  Persisting such a stream
    produces a v2.1 file.
    """
    if n_records > config.m:
        raise ValueError(f"need m >= n_records, got m={config.m}, records={n_records}")
    rng = np.random.default_rng(config.seed + 4)
    weights = (np.arange(1, config.n + 1, dtype=np.float64)) ** (-exponent)
    a = rng.choice(config.n, size=n_records, p=weights / weights.sum())
    b = np.arange(n_records, dtype=np.int64)
    t = None
    if timestamps:
        t = np.cumsum(rng.integers(1, 1000, size=n_records, dtype=np.int64))
    return ColumnarEdgeStream(a, b, n=config.n, m=config.m, t=t, validate=False)


def random_bipartite_columnar(
    config: GeneratorConfig, n_edges: int
) -> ColumnarEdgeStream:
    """Columnar counterpart of :func:`random_bipartite_graph`.

    Draws ``n_edges`` distinct flat edge indices without replacement
    (materialises an ``n*m`` permutation, so intended for benchmark-scale
    dimensions, not astronomically sparse ones).
    """
    max_edges = config.n * config.m
    if n_edges > max_edges:
        raise ValueError(f"n_edges {n_edges} exceeds n*m = {max_edges}")
    rng = np.random.default_rng(config.seed + 3)
    flat = rng.choice(max_edges, size=n_edges, replace=False)
    a, b = flat // config.m, flat % config.m
    if config.shuffle:
        order = rng.permutation(n_edges)
        a, b = a[order], b[order]
    return ColumnarEdgeStream(a, b, n=config.n, m=config.m, validate=False)


def churn_columnar(
    config: GeneratorConfig,
    star_degree: int,
    churn_edges: int,
    star_vertex: int = 0,
) -> ColumnarEdgeStream:
    """Columnar counterpart of :func:`deletion_churn_stream`.

    Random background edges are inserted, the star arrives, then every
    background edge is deleted — all built as concatenated columns.
    """
    if star_degree > config.m:
        raise ValueError(f"star_degree {star_degree} exceeds m={config.m}")
    if not 0 <= star_vertex < config.n:
        raise ValueError(f"star_vertex {star_vertex} out of range [0, {config.n})")
    rng = np.random.default_rng(config.seed + 5)
    max_edges = config.n * config.m
    star_flat = star_vertex * config.m + np.arange(star_degree, dtype=np.int64)
    candidates = rng.choice(
        max_edges, size=min(max_edges, churn_edges + star_degree), replace=False
    )
    churn = candidates[~np.isin(candidates, star_flat)][:churn_edges]
    a = np.concatenate([churn // config.m, star_flat // config.m, churn // config.m])
    b = np.concatenate([churn % config.m, star_flat % config.m, churn % config.m])
    sign = np.concatenate(
        [
            np.full(len(churn), INSERT, dtype=np.int64),
            np.full(star_degree, INSERT, dtype=np.int64),
            np.full(len(churn), DELETE, dtype=np.int64),
        ]
    )
    return ColumnarEdgeStream(a, b, sign, n=config.n, m=config.m, validate=False)


def planted_star_undirected(
    n_vertices: int,
    n_edges: int,
    star_degree: int,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Undirected simple graph with a planted star, as endpoint columns.

    Vertex 0 is connected to ``star_degree`` distinct neighbours; the
    remaining ``n_edges - star_degree`` edges are uniform random distinct
    pairs.  Arrival order is a uniform shuffle of all edges.  Returns
    ``(u, v)`` columns ready for
    :func:`~repro.streams.adapters.bipartite_double_cover_columnar` —
    each unordered pair appears exactly once, so the doubled stream
    satisfies the simple-graph discipline.  This is the end-to-end Star
    Detection benchmark workload.
    """
    if not 1 <= star_degree <= n_vertices - 1:
        raise ValueError(
            f"star_degree must be in [1, {n_vertices - 1}], got {star_degree}"
        )
    background = n_edges - star_degree
    if background < 0:
        raise ValueError(
            f"n_edges {n_edges} smaller than star_degree {star_degree}"
        )
    capacity = n_vertices * (n_vertices - 1) // 2
    if n_edges > capacity:
        raise ValueError(f"n_edges {n_edges} exceeds {capacity} possible pairs")
    rng = np.random.default_rng(seed)
    star_hi = 1 + rng.choice(n_vertices - 1, size=star_degree, replace=False)
    # Unordered pairs are canonicalised as lo * n + hi (lo < hi); star
    # edges have lo == 0, so their codes are exactly star_hi.
    taken = np.sort(star_hi.astype(np.int64))
    collected: List[np.ndarray] = []
    remaining = background
    while remaining > 0:
        draw = 2 * remaining + 1024
        u = rng.integers(n_vertices, size=draw)
        v = rng.integers(n_vertices, size=draw)
        distinct = u != v
        lo = np.minimum(u[distinct], v[distinct]).astype(np.int64)
        hi = np.maximum(u[distinct], v[distinct]).astype(np.int64)
        codes = np.unique(lo * n_vertices + hi)
        codes = codes[~np.isin(codes, taken)]
        # np.unique sorted the codes; keeping a sorted prefix would bias
        # the sample toward low-id vertices, so shuffle before trimming.
        codes = codes[rng.permutation(len(codes))][:remaining]
        collected.append(codes)
        taken = np.unique(np.concatenate([taken, codes]))
        remaining = background - sum(len(chunk) for chunk in collected)
    background_codes = (
        np.concatenate(collected) if collected else np.zeros(0, dtype=np.int64)
    )
    codes = np.concatenate(
        [star_hi.astype(np.int64), background_codes]  # star: lo = 0
    )
    order = rng.permutation(len(codes))
    codes = codes[order]
    return codes // n_vertices, codes % n_vertices


# ----------------------------------------------------------------------
# Application-level record logs (paper §1 motivating examples).
# ----------------------------------------------------------------------


def dos_attack_log(
    n_hosts: int,
    n_records: int,
    victim: str = "10.0.0.1",
    attack_fraction: float = 0.3,
    seed: int = 0,
) -> List[Tuple[str, str]]:
    """Synthetic router log: (destination IP, source IP) records.

    A fraction ``attack_fraction`` of records target ``victim`` from
    distinct spoofed sources (the DoS pattern from the paper's intro);
    the rest is uniform background traffic.  Feed the result to
    :func:`~repro.streams.adapters.log_records_to_stream`.
    """
    rng = random.Random(seed)
    hosts = [f"10.0.{i // 256}.{i % 256}" for i in range(2, n_hosts + 2)]
    records: List[Tuple[str, str]] = []
    for index in range(n_records):
        if rng.random() < attack_fraction:
            source = f"198.51.{index // 256 % 256}.{index % 256}"
            records.append((victim, source))
        else:
            records.append((rng.choice(hosts), rng.choice(hosts)))
    return records


def database_log_stream(
    n_rows: int,
    n_users: int,
    n_updates: int,
    hot_row: str = "orders:42",
    hot_fraction: float = 0.25,
    seed: int = 0,
) -> List[Tuple[str, str]]:
    """Synthetic database update log: (row key, user) records.

    One hot row receives ``hot_fraction`` of all updates from many
    distinct users; FEwW recovers the hot row *and* the users who wrote
    to it (the paper's first motivating example).
    """
    rng = random.Random(seed)
    rows = [f"orders:{i}" for i in range(n_rows)]
    users = [f"user{i}" for i in range(n_users)]
    records: List[Tuple[str, str]] = []
    for _ in range(n_updates):
        if rng.random() < hot_fraction:
            records.append((hot_row, rng.choice(users)))
        else:
            records.append((rng.choice(rows), rng.choice(users)))
    return records


def social_network_stream(
    n_users: int,
    influencer: int = 0,
    n_followers: int = 100,
    n_background: int = 500,
    seed: int = 0,
) -> Tuple[List[Tuple[int, int]], int]:
    """Friendship-update stream with a planted influencer.

    Returns undirected edges (for
    :func:`~repro.streams.adapters.bipartite_double_cover`) and the
    number of vertices.  The influencer gains ``n_followers`` distinct
    followers; background friendships are uniform pairs.
    """
    if n_followers >= n_users:
        raise ValueError(f"need n_users > n_followers, got {n_users} <= {n_followers}")
    rng = random.Random(seed)
    follower_pool = [u for u in range(n_users) if u != influencer]
    followers = rng.sample(follower_pool, n_followers)
    edges = [(influencer, follower) for follower in followers]
    seen = {tuple(sorted(edge)) for edge in edges}
    attempts = 0
    while len(edges) < n_followers + n_background and attempts < 50 * n_background:
        attempts += 1
        u, v = rng.sample(range(n_users), 2)
        key = (min(u, v), max(u, v))
        if key in seen or influencer in key:
            continue
        seen.add(key)
        edges.append((u, v))
    rng.shuffle(edges)
    return edges, n_users
