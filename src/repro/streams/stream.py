"""In-memory edge streams with validity checking and statistics.

:class:`EdgeStream` is the container handed to every streaming algorithm
in this library.  It stores the full update sequence (the *reference*
view used by tests and benchmarks to verify algorithm output), while the
algorithms themselves only ever see it one item at a time via iteration.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.streams.edge import DELETE, INSERT, Edge, StreamItem


class InvalidStreamError(ValueError):
    """Raised when a stream violates the simple-graph update rules."""


@dataclass(frozen=True)
class StreamStats:
    """Summary statistics of a stream's final graph."""

    n_updates: int
    n_inserts: int
    n_deletes: int
    n_edges_final: int
    n_a_vertices: int
    n_b_vertices: int
    max_degree: int
    max_degree_vertex: int

    def __str__(self) -> str:
        return (
            f"StreamStats(updates={self.n_updates}, inserts={self.n_inserts}, "
            f"deletes={self.n_deletes}, final_edges={self.n_edges_final}, "
            f"max_degree={self.max_degree} at a={self.max_degree_vertex})"
        )


class EdgeStream:
    """A sequence of signed edge updates describing a simple bipartite graph.

    Args:
        items: the update sequence.
        n: number of A-vertices (identifiers must lie in ``[0, n)``).
        m: number of B-vertices (identifiers must lie in ``[0, m)``).
        validate: when True (default), check identifier ranges and the
            simple-graph discipline — no duplicate insertion of a live
            edge, no deletion of an absent edge.

    The class is iterable (yields :class:`StreamItem`) and indexable; its
    reference helpers (:meth:`final_edges`, :meth:`degree_of`,
    :meth:`neighbours_of`, :meth:`stats`) compute ground truth for
    verification and are *not* available to streaming algorithms, which
    must only iterate.
    """

    def __init__(
        self,
        items: Sequence[StreamItem],
        n: int,
        m: int,
        validate: bool = True,
    ) -> None:
        if n <= 0 or m <= 0:
            raise ValueError(f"n and m must be positive, got n={n}, m={m}")
        self._items: List[StreamItem] = list(items)
        self.n = n
        self.m = m
        # Lazily computed ground-truth caches; the stream is immutable
        # after construction, so one pass serves every later query.
        self._final_edges_cache: Optional[Set[Edge]] = None
        self._final_degrees_cache: Optional[Dict[int, int]] = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        live: Set[Edge] = set()
        for position, item in enumerate(self._items):
            edge = item.edge
            if edge.a >= self.n:
                raise InvalidStreamError(
                    f"update {position}: A-vertex {edge.a} out of range [0, {self.n})"
                )
            if edge.b >= self.m:
                raise InvalidStreamError(
                    f"update {position}: B-vertex {edge.b} out of range [0, {self.m})"
                )
            if item.sign == INSERT:
                if edge in live:
                    raise InvalidStreamError(
                        f"update {position}: duplicate insert of live edge {edge}"
                    )
                live.add(edge)
            else:
                if edge not in live:
                    raise InvalidStreamError(
                        f"update {position}: delete of absent edge {edge}"
                    )
                live.remove(edge)

    def __iter__(self) -> Iterator[StreamItem]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> StreamItem:
        return self._items[index]

    @property
    def insertion_only(self) -> bool:
        """True when the stream contains no deletions."""
        return all(item.is_insert for item in self._items)

    # ------------------------------------------------------------------
    # Reference (ground-truth) helpers for verification.
    # ------------------------------------------------------------------

    def _final_edges(self) -> Set[Edge]:
        """Shared cached edge set; internal use only (never mutated)."""
        if self._final_edges_cache is None:
            live: Set[Edge] = set()
            for item in self._items:
                if item.sign == INSERT:
                    live.add(item.edge)
                else:
                    live.discard(item.edge)
            self._final_edges_cache = live
        return self._final_edges_cache

    def _final_degrees(self) -> Dict[int, int]:
        """Shared cached degree table; internal use only (never mutated)."""
        if self._final_degrees_cache is None:
            degrees: Counter = Counter()
            for edge in self._final_edges():
                degrees[edge.a] += 1
            self._final_degrees_cache = dict(degrees)
        return self._final_degrees_cache

    def final_edges(self) -> Set[Edge]:
        """Edges present after all updates are applied.

        The single pass over the stream is cached (the stream is
        immutable after construction); callers get a fresh copy they are
        free to mutate.
        """
        return set(self._final_edges())

    def final_degrees(self) -> Dict[int, int]:
        """Final degree of every A-vertex with at least one edge (cached
        internally; the returned dict is the caller's to mutate)."""
        return dict(self._final_degrees())

    def degree_of(self, a: int) -> int:
        """Final degree of A-vertex ``a``."""
        return self._final_degrees().get(a, 0)

    def neighbours_of(self, a: int) -> Set[int]:
        """Final B-side neighbourhood of A-vertex ``a``."""
        return {edge.b for edge in self._final_edges() if edge.a == a}

    def max_degree(self) -> int:
        """Largest final A-vertex degree (0 for the empty graph)."""
        degrees = self._final_degrees()
        return max(degrees.values()) if degrees else 0

    def stats(self) -> StreamStats:
        """Full summary statistics of the final graph."""
        degrees = self._final_degrees()
        final = self._final_edges()
        if degrees:
            max_vertex = max(degrees, key=lambda a: (degrees[a], -a))
            max_deg = degrees[max_vertex]
        else:
            max_vertex, max_deg = -1, 0
        return StreamStats(
            n_updates=len(self._items),
            n_inserts=sum(1 for item in self._items if item.is_insert),
            n_deletes=sum(1 for item in self._items if item.is_delete),
            n_edges_final=len(final),
            n_a_vertices=len({edge.a for edge in final}),
            n_b_vertices=len({edge.b for edge in final}),
            max_degree=max_deg,
            max_degree_vertex=max_vertex,
        )

    def concatenate(self, other: "EdgeStream") -> "EdgeStream":
        """Concatenate two streams over compatible vertex sets."""
        if (self.n, self.m) != (other.n, other.m):
            raise ValueError(
                f"incompatible dimensions: ({self.n},{self.m}) vs ({other.n},{other.m})"
            )
        return EdgeStream(self._items + list(other._items), self.n, self.m)


def stream_from_edges(
    edges: Iterable[Edge],
    n: int,
    m: int,
    validate: bool = True,
) -> EdgeStream:
    """Build an insertion-only stream from an edge iterable (in order)."""
    items = [StreamItem(edge, INSERT) for edge in edges]
    return EdgeStream(items, n, m, validate=validate)
