"""Stream model: edges, signed updates, stream containers, and adapters.

The paper phrases FEwW on bipartite graphs ``G = (A, B, E)`` whose edges
arrive as a stream.  This package provides:

* :class:`Edge` — an (A-vertex, B-vertex) pair;
* :class:`StreamItem` — a signed edge update (+1 insert / -1 delete) for
  insertion-deletion streams;
* :class:`EdgeStream` — an in-memory stream with validity checking
  (simple graph, no deleting absent edges) and summary statistics;
* adapters (:mod:`repro.streams.adapters`) that turn application-level
  item streams (router logs, database logs, friendship updates) into
  bipartite edge streams, and general graphs into the doubled bipartite
  form used by Star Detection (Lemma 3.3);
* workload generators (:mod:`repro.streams.generators`) for every
  scenario used by the tests and benchmarks.
"""

from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.stream import EdgeStream, StreamStats, stream_from_edges
from repro.streams.columnar import (
    DEFAULT_CHUNK_SIZE,
    ColumnarEdgeStream,
    process_columnar,
)
from repro.streams.adapters import (
    LabelCodec,
    bipartite_double_cover,
    bipartite_double_cover_columnar,
    log_records_to_stream,
)
from repro.streams.persist import (
    ChunkedStreamReader,
    StreamFormatError,
    detect_version,
    dump_columnar,
    dump_stream,
    dumps_stream,
    load_columnar,
    load_stream,
    loads_stream,
    stream_has_timestamps,
)
from repro.streams.transforms import (
    interleaved,
    reversed_stream,
    shuffled,
    subsampled,
    with_duplicates,
)
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    churn_columnar,
    database_log_stream,
    degree_cascade_graph,
    deletion_churn_stream,
    dos_attack_log,
    planted_star_graph,
    planted_star_undirected,
    random_bipartite_columnar,
    random_bipartite_graph,
    social_network_stream,
    zipf_frequency_columnar,
    zipf_frequency_stream,
)

__all__ = [
    "ChunkedStreamReader",
    "ColumnarEdgeStream",
    "DEFAULT_CHUNK_SIZE",
    "DELETE",
    "Edge",
    "EdgeStream",
    "GeneratorConfig",
    "INSERT",
    "LabelCodec",
    "StreamFormatError",
    "StreamItem",
    "StreamStats",
    "adversarial_interleaved_stream",
    "bipartite_double_cover",
    "bipartite_double_cover_columnar",
    "churn_columnar",
    "database_log_stream",
    "degree_cascade_graph",
    "deletion_churn_stream",
    "detect_version",
    "dos_attack_log",
    "dump_columnar",
    "dump_stream",
    "dumps_stream",
    "interleaved",
    "load_columnar",
    "load_stream",
    "loads_stream",
    "log_records_to_stream",
    "planted_star_graph",
    "planted_star_undirected",
    "process_columnar",
    "random_bipartite_columnar",
    "random_bipartite_graph",
    "reversed_stream",
    "shuffled",
    "social_network_stream",
    "stream_from_edges",
    "stream_has_timestamps",
    "subsampled",
    "with_duplicates",
    "zipf_frequency_columnar",
    "zipf_frequency_stream",
]
