"""Edges and signed stream updates.

Vertices are integers: A-vertices live in ``[0, n)`` and B-vertices in
``[0, m)``.  The two sides are separate identifier spaces — the edge
``Edge(3, 3)`` connects A-vertex 3 to B-vertex 3, which are different
vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Sign of an edge insertion in an insertion-deletion stream.
INSERT = 1

#: Sign of an edge deletion in an insertion-deletion stream.
DELETE = -1

_INSERT_SIGNS = np.empty(0, dtype=np.int64)


def insert_signs(length: int) -> np.ndarray:
    """A read-only length-``length`` column of :data:`INSERT` signs.

    ``process_batch`` implementations receive ``sign=None`` for
    insertion-only chunks and used to allocate a fresh ``np.ones`` per
    chunk; this returns a slice of one shared cached array instead.  The
    result is marked non-writable — callers must treat it as a constant.
    """
    global _INSERT_SIGNS
    if length > len(_INSERT_SIGNS):
        grown = np.ones(max(length, 8192), dtype=np.int64)
        grown.setflags(write=False)
        _INSERT_SIGNS = grown
    return _INSERT_SIGNS[:length]


@dataclass(frozen=True, slots=True)
class Edge:
    """An edge of the bipartite input graph ``G = (A, B, E)``.

    Attributes:
        a: the A-side endpoint (the *item*, e.g. a destination IP).
        b: the B-side endpoint (the *witness*, e.g. a timestamp).
    """

    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ValueError(f"vertex identifiers must be non-negative: {self}")

    def flat_index(self, m: int) -> int:
        """Position of this edge in the flattened ``n x m`` indicator vector.

        Insertion-deletion algorithms treat the edge set as a vector of
        dimension ``n * m``; this is the coordinate of the edge in that
        vector.
        """
        if self.b >= m:
            raise ValueError(f"b={self.b} out of range for m={m}")
        return self.a * m + self.b

    @staticmethod
    def from_flat_index(index: int, m: int) -> "Edge":
        """Inverse of :meth:`flat_index`."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return Edge(index // m, index % m)


@dataclass(frozen=True, slots=True)
class StreamItem:
    """A signed edge update: ``sign`` is :data:`INSERT` or :data:`DELETE`."""

    edge: Edge
    sign: int = INSERT

    def __post_init__(self) -> None:
        if self.sign not in (INSERT, DELETE):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")

    @property
    def is_insert(self) -> bool:
        return self.sign == INSERT

    @property
    def is_delete(self) -> bool:
        return self.sign == DELETE
