"""Adapters between application data and the bipartite stream model.

The paper motivates FEwW with three applications (database logs, social
networks, router traffic logs).  All of them reduce to a bipartite edge
stream: items become A-vertices and their satellite data (users,
timestamps, source IPs) become B-vertices.  :class:`LabelCodec` performs
that mapping for arbitrary hashable labels, and
:func:`log_records_to_stream` applies it to (item, witness) record logs.

Star Detection on a general graph reduces to FEwW on the *bipartite
double cover* (proof of Lemma 3.3): every undirected edge ``uv`` becomes
the two directed edges ``u->v`` and ``v->u``.  :func:`bipartite_double_cover`
implements that transformation on boxed streams, preserving update
order; :func:`bipartite_double_cover_columnar` is its vectorized
counterpart producing the :class:`~repro.streams.columnar.ColumnarEdgeStream`
the execution engine consumes (same update order, equivalence-tested).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.edge import Edge, StreamItem
from repro.streams.stream import EdgeStream


class LabelCodec:
    """Bidirectional mapping from hashable labels to dense integer ids.

    Streaming applications identify items by strings (IP addresses, row
    keys); the algorithms need dense integers.  The codec assigns ids in
    first-seen order so that encoding is deterministic given the input
    order.
    """

    def __init__(self) -> None:
        self._to_id: Dict[Hashable, int] = {}
        self._to_label: List[Hashable] = []

    def encode(self, label: Hashable) -> int:
        """Return the id for ``label``, assigning a fresh one if new."""
        existing = self._to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._to_label)
        self._to_id[label] = new_id
        self._to_label.append(label)
        return new_id

    def decode(self, identifier: int) -> Hashable:
        """Return the label for ``identifier``.

        Raises:
            KeyError: if the identifier was never assigned.
        """
        if not 0 <= identifier < len(self._to_label):
            raise KeyError(f"unknown identifier {identifier}")
        return self._to_label[identifier]

    def __len__(self) -> int:
        return len(self._to_label)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._to_id


def log_records_to_stream(
    records: Sequence[Tuple[Hashable, Hashable]],
    n: int | None = None,
    m: int | None = None,
) -> Tuple[EdgeStream, LabelCodec, LabelCodec]:
    """Convert an (item, witness) record log into an insertion-only stream.

    Args:
        records: (item label, witness label) pairs in arrival order, e.g.
            (destination IP, timestamp) for a router log.  Repeated pairs
            are dropped (the graph is simple): a witness proves one unit
            of frequency once.
        n: number of A-vertices; defaults to the number of distinct items.
        m: number of B-vertices; defaults to the number of distinct
            witnesses.

    Returns:
        The edge stream plus the item codec and the witness codec, so
        callers can translate an algorithm's output back to labels.
    """
    item_codec = LabelCodec()
    witness_codec = LabelCodec()
    seen: set = set()
    items: List[StreamItem] = []
    for item_label, witness_label in records:
        pair = (item_codec.encode(item_label), witness_codec.encode(witness_label))
        if pair in seen:
            continue
        seen.add(pair)
        items.append(StreamItem(Edge(pair[0], pair[1])))
    final_n = n if n is not None else max(len(item_codec), 1)
    final_m = m if m is not None else max(len(witness_codec), 1)
    return EdgeStream(items, final_n, final_m), item_codec, witness_codec


def bipartite_double_cover(
    undirected_edges: Iterable[Tuple[int, int]],
    n_vertices: int,
    signs: Iterable[int] | None = None,
) -> EdgeStream:
    """Build the doubled bipartite stream used by Star Detection.

    Every undirected edge ``(u, v)`` of a general graph on
    ``n_vertices`` vertices yields two bipartite edges: A-vertex ``u`` to
    B-vertex ``v`` and A-vertex ``v`` to B-vertex ``u`` (Lemma 3.3's
    construction ``H = (V, V, E')``).  The degree of A-vertex ``u`` in
    the cover equals the degree of ``u`` in the original graph.

    Args:
        undirected_edges: edges of the general graph, in stream order.
        n_vertices: number of vertices of the general graph.
        signs: optional per-edge signs (+1/-1) for insertion-deletion
            streams; both directed copies inherit the sign.
    """
    edge_list = list(undirected_edges)
    sign_list = list(signs) if signs is not None else [1] * len(edge_list)
    if len(sign_list) != len(edge_list):
        raise ValueError(
            f"got {len(edge_list)} edges but {len(sign_list)} signs"
        )
    items: List[StreamItem] = []
    for (u, v), sign in zip(edge_list, sign_list):
        if u == v:
            raise ValueError(f"self-loop {u} not allowed in a simple graph")
        items.append(StreamItem(Edge(u, v), sign))
        items.append(StreamItem(Edge(v, u), sign))
    return EdgeStream(items, n_vertices, n_vertices)


def bipartite_double_cover_columnar(
    u,
    v,
    n_vertices: int,
    sign=None,
    *,
    validate: bool = True,
) -> ColumnarEdgeStream:
    """Vectorized double cover: endpoint columns in, columnar stream out.

    Produces exactly the update sequence :func:`bipartite_double_cover`
    would — for undirected edge ``i``, the directed copy ``u[i]->v[i]``
    lands at position ``2i`` and ``v[i]->u[i]`` at ``2i+1`` — but as
    three interleave-filled NumPy columns instead of ``2 |E|`` boxed
    items, so million-edge covers are built in a few array writes and
    feed the engine's ``process_batch`` path directly.

    Args:
        u: first endpoints of the undirected edges, in stream order.
        v: second endpoints (same length).
        n_vertices: number of vertices of the general graph.
        sign: optional per-undirected-edge signs (+1/-1); both directed
            copies inherit the sign.  ``None`` means insertion-only.
        validate: forwarded to :class:`ColumnarEdgeStream` (range and
            simple-graph discipline checks over the doubled stream).
    """
    u = np.ascontiguousarray(u, dtype=np.int64)
    v = np.ascontiguousarray(v, dtype=np.int64)
    if u.shape != v.shape or u.ndim != 1:
        raise ValueError(
            f"u and v must be 1-d arrays of equal length, got shapes "
            f"{u.shape} and {v.shape}"
        )
    loops = np.flatnonzero(u == v)
    if len(loops):
        raise ValueError(
            f"self-loop {int(u[loops[0]])} not allowed in a simple graph"
        )
    doubled_a = np.empty(2 * len(u), dtype=np.int64)
    doubled_b = np.empty(2 * len(u), dtype=np.int64)
    doubled_a[0::2] = u
    doubled_a[1::2] = v
    doubled_b[0::2] = v
    doubled_b[1::2] = u
    doubled_sign: Optional[np.ndarray] = None
    if sign is not None:
        sign = np.ascontiguousarray(sign, dtype=np.int64)
        if sign.shape != u.shape:
            raise ValueError(
                f"got {len(u)} edges but {len(sign)} signs"
            )
        doubled_sign = np.repeat(sign, 2)
    return ColumnarEdgeStream(
        doubled_a,
        doubled_b,
        doubled_sign,
        n=n_vertices,
        m=n_vertices,
        validate=validate,
    )
