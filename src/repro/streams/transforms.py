"""Stream transformations for experiment construction.

Deterministic, composable operations on :class:`EdgeStream` used when
building workloads: seeded shuffles, interleavings, reversals,
duplicate injection (for exercising :class:`DuplicateFilter`), and
sub-sampling.  All return new streams; inputs are never mutated.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.streams.edge import INSERT, StreamItem
from repro.streams.stream import EdgeStream


def shuffled(stream: EdgeStream, seed: int) -> EdgeStream:
    """Uniformly permute an insertion-only stream's arrival order.

    Raises:
        ValueError: for turnstile streams, where reordering can make a
        deletion precede its insertion.
    """
    if not stream.insertion_only:
        raise ValueError("cannot shuffle a stream with deletions")
    items = list(stream)
    random.Random(seed).shuffle(items)
    return EdgeStream(items, stream.n, stream.m)


def reversed_stream(stream: EdgeStream) -> EdgeStream:
    """Reverse arrival order (insertion-only; same final graph)."""
    if not stream.insertion_only:
        raise ValueError("cannot reverse a stream with deletions")
    return EdgeStream(list(stream)[::-1], stream.n, stream.m)


def interleaved(streams: Sequence[EdgeStream], seed: int | None = None) -> EdgeStream:
    """Merge several streams over the same vertex sets.

    With ``seed`` given, the merge order is a uniformly random
    interleaving (each stream's internal order preserved); without it,
    streams are concatenated.  All inputs must share dimensions and be
    jointly valid (disjoint edge sets for insertion-only inputs).
    """
    if not streams:
        raise ValueError("need at least one stream")
    dimensions = {(stream.n, stream.m) for stream in streams}
    if len(dimensions) != 1:
        raise ValueError(f"streams have mismatched dimensions: {dimensions}")
    n, m = dimensions.pop()
    if seed is None:
        items = [item for stream in streams for item in stream]
        return EdgeStream(items, n, m)
    rng = random.Random(seed)
    cursors = [list(stream) for stream in streams]
    positions = [0] * len(cursors)
    ticket_pool: List[int] = []
    for index, cursor in enumerate(cursors):
        ticket_pool.extend([index] * len(cursor))
    rng.shuffle(ticket_pool)
    items = []
    for source in ticket_pool:
        items.append(cursors[source][positions[source]])
        positions[source] += 1
    return EdgeStream(items, n, m)


def with_duplicates(
    stream: EdgeStream, duplication_factor: float, seed: int
) -> List[StreamItem]:
    """Inject repeated arrivals of existing pairs into a raw item list.

    Returns a *raw update list* (not an :class:`EdgeStream`, which
    enforces simplicity) in which each original insert is followed,
    with probability ``duplication_factor``, by an immediate repeat —
    the input shape :class:`~repro.sketch.bloom.DuplicateFilter`
    de-duplicates.
    """
    if not stream.insertion_only:
        raise ValueError("duplicate injection applies to insertion-only streams")
    if duplication_factor < 0:
        raise ValueError(f"duplication_factor must be >= 0, got {duplication_factor}")
    rng = random.Random(seed)
    raw: List[StreamItem] = []
    for item in stream:
        raw.append(item)
        repeats = int(duplication_factor)
        if rng.random() < duplication_factor - repeats:
            repeats += 1
        raw.extend(StreamItem(item.edge, INSERT) for _ in range(repeats))
    return raw


def subsampled(stream: EdgeStream, keep_probability: float, seed: int) -> EdgeStream:
    """Keep each insert independently with the given probability
    (insertion-only streams; used for quick scaled-down pilots)."""
    if not stream.insertion_only:
        raise ValueError("subsampling applies to insertion-only streams")
    if not 0 <= keep_probability <= 1:
        raise ValueError(f"keep_probability must be in [0,1], got {keep_probability}")
    rng = random.Random(seed)
    items = [item for item in stream if rng.random() < keep_probability]
    return EdgeStream(items, stream.n, stream.m)
