"""repro — Frequent Elements with Witnesses in Data Streams.

A full reproduction of Christian Konrad's PODS 2021 paper: the
insertion-only and insertion-deletion streaming algorithms for the
FEwW problem, the Star Detection extension, the sketching substrate
(l0-samplers, sparse recovery, k-wise hashing), classical
frequent-elements baselines, and executable versions of every
lower-bound reduction.

Quickstart::

    from repro import InsertionOnlyFEwW, planted_star_graph, GeneratorConfig

    stream = planted_star_graph(GeneratorConfig(n=1000, m=2000, seed=7),
                                star_degree=200)
    algorithm = InsertionOnlyFEwW(n=1000, d=200, alpha=2, seed=1)
    result = algorithm.process(stream).result()
    print(result.vertex, result.size)   # the heavy vertex + >=100 witnesses

Or declaratively — every run is a serializable spec (source x window x
backend x processors) executed through :class:`repro.Pipeline`::

    from repro import Pipeline

    result = (Pipeline.builder()
              .generator("star", n=1000, m=2000, d=200, seed=7)
              .processor("insertion-only", n=1000, d=200, alpha=2, seed=1)
              .build()
              .run())
    print(result["insertion-only"])     # same answer, plus a RunReport

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced claim.
"""

from repro.core import (
    AlgorithmFailed,
    DegResSampling,
    InsertionDeletionFEwW,
    InsertionOnlyFEwW,
    Neighbourhood,
    SamplingStrategy,
    StarDetection,
    StarDetectionResult,
    TopKFEwW,
    TumblingWindowFEwW,
    verify_neighbourhood,
)
from repro.engine import (
    DecayPolicy,
    FanoutRunner,
    MergeableStreamProcessor,
    ShardedRunner,
    SlidingPolicy,
    StreamProcessor,
    TumblingPolicy,
    WindowPolicy,
    WindowedProcessor,
    as_chunks,
    run_fanout,
    run_sharded,
)
from repro.pipeline import (
    ExecSpec,
    Pipeline,
    PipelineBuilder,
    PipelineResult,
    PipelineSpec,
    ProcessorSpec,
    SourceSpec,
    WindowSpec,
    register_generator,
    register_processor,
    run_spec,
)
from repro.streams import (
    DELETE,
    INSERT,
    ChunkedStreamReader,
    Edge,
    EdgeStream,
    GeneratorConfig,
    LabelCodec,
    StreamItem,
    bipartite_double_cover,
    bipartite_double_cover_columnar,
    dump_columnar,
    dump_stream,
    load_columnar,
    load_stream,
    log_records_to_stream,
    planted_star_graph,
    stream_from_edges,
)
from repro.streams.columnar import (
    ColumnarEdgeStream,
    process_columnar,
)
from repro.streams.generators import (
    adversarial_interleaved_stream,
    churn_columnar,
    database_log_stream,
    degree_cascade_graph,
    deletion_churn_stream,
    dos_attack_log,
    random_bipartite_columnar,
    random_bipartite_graph,
    social_network_stream,
    zipf_frequency_columnar,
    zipf_frequency_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmFailed",
    "ChunkedStreamReader",
    "ColumnarEdgeStream",
    "DELETE",
    "DecayPolicy",
    "DegResSampling",
    "Edge",
    "EdgeStream",
    "ExecSpec",
    "FanoutRunner",
    "GeneratorConfig",
    "INSERT",
    "InsertionDeletionFEwW",
    "InsertionOnlyFEwW",
    "LabelCodec",
    "MergeableStreamProcessor",
    "Neighbourhood",
    "Pipeline",
    "PipelineBuilder",
    "PipelineResult",
    "PipelineSpec",
    "ProcessorSpec",
    "SamplingStrategy",
    "ShardedRunner",
    "SlidingPolicy",
    "SourceSpec",
    "StarDetection",
    "StarDetectionResult",
    "StreamItem",
    "StreamProcessor",
    "TopKFEwW",
    "TumblingPolicy",
    "TumblingWindowFEwW",
    "WindowPolicy",
    "WindowSpec",
    "WindowedProcessor",
    "adversarial_interleaved_stream",
    "as_chunks",
    "bipartite_double_cover",
    "bipartite_double_cover_columnar",
    "churn_columnar",
    "database_log_stream",
    "degree_cascade_graph",
    "deletion_churn_stream",
    "dos_attack_log",
    "dump_columnar",
    "dump_stream",
    "load_columnar",
    "load_stream",
    "log_records_to_stream",
    "planted_star_graph",
    "process_columnar",
    "random_bipartite_columnar",
    "random_bipartite_graph",
    "register_generator",
    "register_processor",
    "run_fanout",
    "run_sharded",
    "run_spec",
    "social_network_stream",
    "stream_from_edges",
    "verify_neighbourhood",
    "zipf_frequency_columnar",
    "zipf_frequency_stream",
]
