"""Statistical test helpers for randomised-structure verification.

The library's correctness claims are probabilistic (uniform reservoir
samples, uniform ℓ₀-samples, success probabilities).  These helpers
give the test suite principled acceptance thresholds instead of ad-hoc
tolerances:

* :func:`chi_square_uniformity_pvalue` — is an observed histogram
  consistent with the uniform distribution?
* :func:`binomial_tail_bound` — is an observed success count consistent
  with a claimed success probability?
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy import stats as scipy_stats


def chi_square_uniformity_pvalue(counts: Sequence[int]) -> float:
    """P-value of the chi-square test against the uniform distribution.

    Small values (< 0.001, say) indicate the histogram is unlikely to
    come from uniform sampling.  Requires at least two categories and a
    positive total.
    """
    if len(counts) < 2:
        raise ValueError(f"need at least 2 categories, got {len(counts)}")
    total = sum(counts)
    if total <= 0:
        raise ValueError("need a positive total count")
    if any(count < 0 for count in counts):
        raise ValueError("counts must be non-negative")
    expected = total / len(counts)
    statistic = sum((count - expected) ** 2 / expected for count in counts)
    return float(scipy_stats.chi2.sf(statistic, df=len(counts) - 1))


def binomial_tail_bound(successes: int, trials: int, claimed_p: float) -> float:
    """Probability of seeing <= ``successes`` in ``trials`` draws when
    each succeeds with probability ``claimed_p``.

    A tiny value means the observation refutes the claimed success
    probability; tests assert this stays above their significance
    threshold.
    """
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, got {successes}/{trials}")
    if not 0.0 <= claimed_p <= 1.0:
        raise ValueError(f"claimed_p must be in [0,1], got {claimed_p}")
    return float(scipy_stats.binom.cdf(successes, trials, claimed_p))


def wilson_interval(successes: int, trials: int, z: float = 2.576) -> tuple[float, float]:
    """Wilson score confidence interval for a success rate (z=2.576 ≈ 99%)."""
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, got {successes}/{trials}")
    p_hat = successes / trials
    denominator = 1 + z**2 / trials
    centre = (p_hat + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denominator
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)
