"""Empirical information-theory estimators.

The paper's lower bounds are information-complexity arguments: a correct
protocol's message must carry ``Ω(...)`` bits of mutual information with
the inputs.  These estimators let the benchmarks *demonstrate* that on
executable instances: we run a protocol many times over the input
distribution, collect (input, message) samples, and estimate
``I(input : message)`` by plug-in entropy estimation.

Plug-in estimates are biased low for undersampled distributions; the
benchmarks only use them on deliberately tiny instances where the joint
support is well covered, and the tests check the estimators against
closed forms on known distributions.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Sequence, Tuple


def entropy_of_counts(counts: Iterable[int]) -> float:
    """Shannon entropy (bits) of a distribution given by raw counts."""
    total = 0
    cleaned = []
    for count in counts:
        if count < 0:
            raise ValueError(f"negative count {count}")
        if count:
            cleaned.append(count)
            total += count
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in cleaned:
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def empirical_entropy(samples: Sequence[Hashable]) -> float:
    """Plug-in entropy estimate (bits) from i.i.d. samples."""
    return entropy_of_counts(Counter(samples).values())


def empirical_mutual_information(
    pairs: Sequence[Tuple[Hashable, Hashable]],
) -> float:
    """Plug-in estimate of ``I(X : Y)`` from joint samples.

    Uses ``I = H(X) + H(Y) - H(X, Y)``; never returns a negative value
    (tiny negatives from floating arithmetic are clamped).
    """
    if not pairs:
        return 0.0
    xs = [pair[0] for pair in pairs]
    ys = [pair[1] for pair in pairs]
    estimate = (
        empirical_entropy(xs) + empirical_entropy(ys) - empirical_entropy(pairs)
    )
    return max(0.0, estimate)
