"""Theory utilities: the paper's closed-form bounds, Baranyai partitions,
and empirical information-theory estimators.

:mod:`repro.theory.bounds` encodes every quantitative claim of the paper
as a function, so benchmarks can print *paper-predicted vs. measured*
rows; :mod:`repro.theory.baranyai` constructs the hypergraph
1-factorisations behind Lemma 4.5; :mod:`repro.theory.information`
estimates entropies and mutual information on small instances to
illustrate the lower-bound arguments.
"""

from repro.theory.bounds import (
    deg_res_success_lower_bound,
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
    insertion_only_lower_bound_words,
    insertion_only_space_words,
    sampling_lemma_draws,
    set_disjointness_lower_bound_words,
    trivial_witness_lower_bound_words,
)
from repro.theory.stats import (
    binomial_tail_bound,
    chi_square_uniformity_pvalue,
    wilson_interval,
)
from repro.theory.baranyai import baranyai_partition, is_baranyai_partition
from repro.theory.information import (
    empirical_entropy,
    empirical_mutual_information,
    entropy_of_counts,
)

__all__ = [
    "baranyai_partition",
    "binomial_tail_bound",
    "chi_square_uniformity_pvalue",
    "trivial_witness_lower_bound_words",
    "wilson_interval",
    "deg_res_success_lower_bound",
    "empirical_entropy",
    "empirical_mutual_information",
    "entropy_of_counts",
    "insertion_deletion_lower_bound_words",
    "insertion_deletion_space_words",
    "insertion_only_lower_bound_words",
    "insertion_only_space_words",
    "is_baranyai_partition",
    "sampling_lemma_draws",
    "set_disjointness_lower_bound_words",
]
