"""Constructive Baranyai partitions (Theorem 4.4).

Baranyai's theorem: for ``k | n``, the complete ``k``-uniform hypergraph
on ``[n]`` is 1-factorisable — the ``C(n, k)`` hyperedges can be
partitioned into ``C(n-1, k-1)`` *parallel classes*, each consisting of
``n/k`` pairwise-disjoint ``k``-sets covering ``[n]``.  The paper's
Lemma 4.5 uses exactly this partition to split the subsets
``X(x_{i-1})`` so the chain rule telescopes.

We implement the classical inductive flow construction: elements are
introduced one at a time; at stage ``i`` each class holds ``n/k``
*partial edges* (subsets of the first ``i`` elements), and the invariant
is that each subset ``S`` of the first ``i`` elements occurs as a
partial edge exactly ``C(n-i, k-|S|)`` times across all classes.  The
stage step assigns element ``i`` to exactly one partial edge per class;
the assignment exists by integrality of a flow polytope whose fractional
feasibility is checked in the proof (each class sends ``(k-|S|)/(n-i)``
fractional units per copy of ``S``).  We find the integral flow with
:func:`networkx.algorithms.flow.maximum_flow`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, List, Tuple

import networkx as nx

Factor = List[FrozenSet[int]]


def baranyai_partition(n: int, k: int) -> List[Factor]:
    """Partition all k-subsets of ``range(n)`` into parallel classes.

    Args:
        n: ground-set size.
        k: uniformity; must divide ``n``.

    Returns:
        ``C(n-1, k-1)`` classes, each a list of ``n // k`` disjoint
        frozensets whose union is ``range(n)``.

    Raises:
        ValueError: when ``k`` does not divide ``n`` or is out of range.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n % k != 0:
        raise ValueError(f"Baranyai's theorem needs k | n, got n={n}, k={k}")
    n_classes = math.comb(n - 1, k - 1)
    per_class = n // k
    # classes[j] is a list of partial edges (tuples, kept sorted).
    classes: List[List[Tuple[int, ...]]] = [
        [() for _ in range(per_class)] for _ in range(n_classes)
    ]
    for element in range(n):
        assignment = _assign_element(classes, element, n, k)
        for class_index, edge_position in assignment.items():
            previous = classes[class_index][edge_position]
            classes[class_index][edge_position] = previous + (element,)
    return [[frozenset(edge) for edge in cls] for cls in classes]


def _assign_element(
    classes: List[List[Tuple[int, ...]]],
    element: int,
    n: int,
    k: int,
) -> Dict[int, int]:
    """Choose, for each class, which partial edge receives ``element``.

    Builds the stage flow network (source -> subset types -> classes ->
    sink) and extracts an integral assignment from a maximum flow.

    Returns:
        mapping of class index to the position (within the class's edge
        list) of the edge receiving the element.
    """
    remaining = n - element  # elements not yet placed, including this one
    # Count how many classes must extend each subset type.
    type_demand: Dict[Tuple[int, ...], int] = {}
    type_holders: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
    for class_index, edges in enumerate(classes):
        for position, edge in enumerate(edges):
            if len(edge) >= k:
                continue
            type_holders.setdefault(edge, []).append((class_index, position))
    for edge_type in type_holders:
        type_demand[edge_type] = math.comb(remaining - 1, k - len(edge_type) - 1)

    graph = nx.DiGraph()
    source, sink = "source", "sink"
    for edge_type, demand in type_demand.items():
        if demand <= 0:
            continue
        type_node = ("type", edge_type)
        graph.add_edge(source, type_node, capacity=demand)
        multiplicity: Counter = Counter()
        for class_index, _ in type_holders[edge_type]:
            multiplicity[class_index] += 1
        for class_index, count in multiplicity.items():
            graph.add_edge(type_node, ("class", class_index), capacity=count)
    for class_index in range(len(classes)):
        graph.add_edge(("class", class_index), sink, capacity=1)

    flow_value, flow = nx.maximum_flow(graph, source, sink)
    if flow_value != len(classes):
        raise RuntimeError(
            f"Baranyai stage flow infeasible at element {element}: "
            f"flow {flow_value} != classes {len(classes)} (library bug)"
        )

    assignment: Dict[int, int] = {}
    for edge_type, holders in type_holders.items():
        type_node = ("type", edge_type)
        if type_node not in flow:
            continue
        takers = {
            node[1]: units
            for node, units in flow[type_node].items()
            if isinstance(node, tuple) and node[0] == "class" and units > 0
        }
        positions: Dict[int, List[int]] = {}
        for class_index, position in holders:
            positions.setdefault(class_index, []).append(position)
        for class_index, units in takers.items():
            if units != 1:
                raise RuntimeError(
                    f"class {class_index} assigned {units} copies of one type"
                )
            assignment[class_index] = positions[class_index].pop()
    if len(assignment) != len(classes):
        raise RuntimeError(
            f"element {element}: only {len(assignment)} of {len(classes)} "
            f"classes received an assignment"
        )
    return assignment


def is_baranyai_partition(partition: List[Factor], n: int, k: int) -> bool:
    """Verify the three conditions of Theorem 4.4.

    (1) every class has ``n/k`` edges; (2) classes are edge-disjoint and
    jointly exhaust all ``C(n, k)`` k-subsets; (3) each class's edges
    partition ``range(n)``.
    """
    if n % k != 0:
        return False
    expected_classes = math.comb(n - 1, k - 1)
    if len(partition) != expected_classes:
        return False
    seen: set = set()
    ground = frozenset(range(n))
    for cls in partition:
        if len(cls) != n // k:
            return False
        union: set = set()
        for edge in cls:
            if len(edge) != k or edge in seen:
                return False
            if union & edge:
                return False
            seen.add(edge)
            union |= edge
        if union != ground:
            return False
    return len(seen) == math.comb(n, k)
