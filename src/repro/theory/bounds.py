"""Closed-form versions of every quantitative bound in the paper.

Benchmarks use these to print paper-predicted values next to measured
ones.  All space formulas return *words* (see :mod:`repro.spacemeter`):
a ``log n``-bit quantity is one word at our problem sizes, so the
paper's ``log`` factors inside bit-bounds collapse into the word unit,
while structural factors (counts of stored items) remain.
"""

from __future__ import annotations

import math


def deg_res_success_lower_bound(n1: int, n2: int, s: int) -> float:
    """Lemma 3.1: success probability of ``Deg-Res-Sampling(d1, d2, s)``.

    Given at most ``n1`` A-vertices of degree >= d1 and at least ``n2``
    of degree >= d1 + d2 - 1, the run succeeds with probability at least
    ``1 - (1 - s/n1)^{n2} >= 1 - e^{-s n2 / n1}``.  Returns the (tighter)
    first form, clamped to [0, 1]; returns 1.0 when the reservoir can
    hold every candidate (``n1 <= s``).
    """
    if n1 < 0 or n2 < 0 or s < 1:
        raise ValueError(f"need n1, n2 >= 0 and s >= 1, got {n1}, {n2}, {s}")
    if n2 == 0:
        return 0.0
    if n1 <= s:
        return 1.0
    return 1.0 - (1.0 - s / n1) ** n2


def sampling_lemma_draws(n: int, k: int, ell: int, c: float = 4.0) -> int:
    """Lemma 5.1: draws needed to hit ``ell`` distinct members of a
    ``k``-subset of an ``n``-universe with probability ``1 - n^{-(c-3)}``.

    Returns ``ceil(c * ln(n) * n * ell / k)``.
    """
    if not 1 <= ell <= k <= n:
        raise ValueError(f"need 1 <= ell <= k <= n, got ell={ell}, k={k}, n={n}")
    return math.ceil(c * math.log(max(n, 2)) * n * ell / k)


# ----------------------------------------------------------------------
# Upper bounds (space of the paper's algorithms), in words.
# ----------------------------------------------------------------------


def insertion_only_space_words(n: int, d: int, alpha: int) -> int:
    """Theorem 3.2: ``O(n log n + n^{1/α} d log² n)`` bits.

    In words: ``n`` (degree table) plus ``s * d2 * 2`` per run summed
    over α runs, where ``s = ceil(ln n * n^{1/α})`` and
    ``d2 = ceil(d/α)`` — i.e. the worst case of the structure the
    algorithm actually retains.  One residual ``log n`` factor (the
    reservoir size's ``ln n``) stays, matching the ``log² n`` in the bit
    bound (the other log is the per-edge word).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    s = math.ceil(math.log(max(n, 2)) * n ** (1.0 / alpha))
    d2 = math.ceil(d / alpha)
    per_run = s * d2 * 2 + s + 1
    return n + alpha * per_run


def insertion_deletion_space_words(
    n: int,
    m: int,
    d: int,
    alpha: float,
    scale: float = 1.0,
) -> int:
    """Theorem 5.4: ``Õ(dn/α²)`` for ``α <= √n``, ``Õ(√n d/α)`` otherwise.

    Computed from the algorithm's actual sampler counts times the paper's
    per-sampler cost, so the crossover at ``α = √n`` emerges naturally.
    """
    from repro.core.insertion_deletion import (
        edge_sampler_count,
        samplers_per_vertex,
        vertex_sample_size,
    )
    from repro.sketch.l0 import l0_sampler_space_words

    delta = 1.0 / (max(n, 2) ** 10 * d)
    vertex_words = (
        vertex_sample_size(n, alpha, scale)
        * samplers_per_vertex(n, d, alpha, scale)
        * l0_sampler_space_words(m, delta)
    )
    edge_words = edge_sampler_count(n, m, d, alpha, scale) * l0_sampler_space_words(
        n * m, delta
    )
    return vertex_words + edge_words


# ----------------------------------------------------------------------
# Lower bounds, in words (poly-log factors suppressed as in the paper).
# ----------------------------------------------------------------------


def trivial_witness_lower_bound_words(d: int, alpha: float) -> float:
    """§1.3's trivial bound: any FEwW output holds >= d/α witnesses, so
    any correct algorithm retains Ω(d/α) words at output time."""
    if alpha <= 0 or d < 1:
        raise ValueError(f"need d >= 1 and alpha > 0, got d={d}, alpha={alpha}")
    return d / alpha


def set_disjointness_lower_bound_words(n: int, alpha: float) -> float:
    """Theorem 4.1: ``Ω(n / α²)`` for any ``α/1.01``-approximation."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return n / alpha**2


def insertion_only_lower_bound_words(n: int, d: int, alpha: int) -> float:
    """Theorems 4.1 + 4.8 combined: ``Ω(n/α² + n^{1/(α-1)} d / α²)``.

    Stated for integral ``α >= 2`` (Theorem 4.8 uses ``p = 1.01 α``
    parties; we report the exponent ``1/(α-1)`` form from §1.1).
    """
    if alpha < 2:
        raise ValueError(f"alpha must be >= 2 for this bound, got {alpha}")
    return n / alpha**2 + (n ** (1.0 / (alpha - 1))) * d / alpha**2


def insertion_deletion_lower_bound_words(n: int, d: int, alpha: float) -> float:
    """Theorem 6.4: ``Ω(nd / (α² log n))`` — returned without the log
    factor (word accounting already absorbs one log)."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return n * d / alpha**2
