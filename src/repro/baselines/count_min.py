"""Count-Min sketch (Cormode, Muthukrishnan 2005) — reference [17].

A ``rows x width`` grid of counters with one pairwise-independent hash
per row.  Point queries return the minimum over the item's cells:
an overestimate by at most ``e * L / width`` with probability
``1 - e^{-rows}``.  Unlike Misra–Gries / SpaceSaving this sketch
supports deletions (strict turnstile).
"""

from __future__ import annotations

import copy
import math
import random
from typing import List, Optional

import numpy as np

from repro.sketch.hashing import KWiseHash, KWiseHashStack, random_kwise
from repro.streams.edge import StreamItem, insert_signs
from repro.streams.stream import EdgeStream


class CountMinSketch:
    """Turnstile frequency sketch.

    Args:
        epsilon: additive error factor (error <= ``e * L * epsilon``).
        delta: failure probability per query.
        seed: hash seed.
    """

    #: Linear sketch: same-seed shards merge bit-identically for any
    #: stream split (see :mod:`repro.engine.protocol`).
    shard_routing = "any"

    def __init__(self, epsilon: float, delta: float, seed: int | None = None) -> None:
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        self.width = math.ceil(math.e / epsilon)
        self.rows = math.ceil(math.log(1.0 / delta))
        rng = random.Random(seed)
        self._hashes: List[KWiseHash] = [
            random_kwise(2, self.width, rng) for _ in range(self.rows)
        ]
        self._table = np.zeros((self.rows, self.width), dtype=np.int64)
        self._build_stack()

    def _build_stack(self) -> None:
        """(Re)build the fused-kernel hash stack from the per-row hashes."""
        self._hash_stack = KWiseHashStack(self._hashes)
        self._row_offsets = (
            np.arange(self.rows, dtype=np.int64)[:, np.newaxis] * self.width
        )

    def update(self, item: int, delta: int = 1) -> None:
        """Apply ``count[item] += delta`` (negative deltas allowed)."""
        for row_index, hash_function in enumerate(self._hashes):
            self._table[row_index, hash_function(item)] += delta

    def update_batch(self, items: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a column of signed updates with one fused kernel.

        Deltas are netted per distinct item (counter cells are
        commutative ``int64`` sums, so netting cannot change the final
        table), the distinct items are hashed for *all* rows in one
        stacked Horner evaluation, and the ``rows x unique``
        contributions land with a single flat ``np.add.at``.
        Bit-identical to calling :meth:`update` item by item.
        """
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if len(items) == 0:
            return
        unique, inverse = np.unique(items, return_inverse=True)
        net = np.zeros(len(unique), dtype=np.int64)
        np.add.at(net, inverse, deltas)
        buckets = self._hash_stack.batch_rows(unique)
        np.add.at(
            self._table.reshape(-1),
            (buckets + self._row_offsets).reshape(-1),
            np.broadcast_to(net[np.newaxis, :], buckets.shape).reshape(-1),
        )

    def process_item(self, item: StreamItem) -> None:
        """Adapter: A-vertex is the item, sign is the delta."""
        self.update(item.edge.a, item.sign)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Column adapter: A-vertices are the items, signs the deltas."""
        a = np.ascontiguousarray(a, dtype=np.int64)
        if sign is None:
            sign = insert_signs(len(a))
        self.update_batch(a, sign)

    def process(self, stream: EdgeStream) -> "CountMinSketch":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "CountMinSketch":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        sketch stays queryable, so finalize returns the sketch itself."""
        return self

    def estimate(self, item: int) -> int:
        """Point query: min over the item's cells (overestimates)."""
        return int(self.estimate_batch(np.array([item], dtype=np.int64))[0])

    def estimate_batch(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate` over a column of items.

        All rows' buckets come from the stacked hash kernel; the
        per-item minimum is one reduction along the row axis.
        """
        items = np.asarray(items, dtype=np.int64)
        if len(items) == 0:
            return np.zeros(0, dtype=np.int64)
        buckets = self._hash_stack.batch_rows(items)
        return self._table[np.arange(self.rows)[:, None], buckets].min(axis=0)

    def shares_hashes_with(self, other: "CountMinSketch") -> bool:
        """True when both sketches use identical hash functions (a
        precondition for merging)."""
        if (self.width, self.rows) != (other.width, other.rows):
            return False
        return all(
            mine.coefficients == theirs.coefficients
            for mine, theirs in zip(self._hashes, other._hashes)
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Cell-wise sum of two sketches over disjoint sub-streams.

        Valid only when both sketches were built with the same seed
        (identical hash functions); the merged sketch answers queries
        for the concatenated stream with the usual guarantee.  The
        table is linear, so sharded-then-merged equals single-pass cell
        for cell.
        """
        if not isinstance(other, CountMinSketch):
            raise ValueError(
                f"cannot merge CountMinSketch with {type(other).__name__}"
            )
        if not self.shares_hashes_with(other):
            raise ValueError(
                "sketches use different hash functions; construct both "
                "with the same seed to merge"
            )
        merged = CountMinSketch.__new__(CountMinSketch)
        merged.width = self.width
        merged.rows = self.rows
        merged._hashes = self._hashes
        merged._table = self._table + other._table
        merged._hash_stack = self._hash_stack
        merged._row_offsets = self._row_offsets
        return merged

    def split(self, n_shards: int) -> List["CountMinSketch"]:
        """``n_shards`` zeroed same-hash shard sketches (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._table.any():
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        """All counters plus one hash per row."""
        return self.rows * self.width + sum(h.space_words() for h in self._hashes)
