"""A natural-but-flawed heuristic: Misra–Gries with witness lists.

The obvious way to retrofit witnesses onto a classical FE summary is to
attach a witness list to every Misra–Gries counter.  This fails in a
specific, instructive way: the decrement step discards counters — and
with them *all* collected witnesses — so an item that is evicted and
later re-admitted restarts its witness list from scratch.  On streams
where the heavy item's occurrences are spread out (so it gets evicted
between bursts), the heuristic's witness count can stay arbitrarily far
below the true frequency, even though the plain Misra–Gries frequency
estimate is fine.

The paper's Algorithm 2 avoids this by decoupling *membership* (the
degree-triggered reservoir, which is never reset by other items'
arrivals, only by explicit random eviction) from *counting*.  Benchmark
E13 quantifies the gap; :class:`MisraGriesWithWitnesses` exists to make
the comparison honest rather than against a strawman nobody would
write.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.misra_gries import fold_counters
from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.spacemeter import edge_words, vertex_words
from repro.streams.edge import INSERT, StreamItem
from repro.streams.stream import EdgeStream


class MisraGriesWithWitnesses:
    """Misra–Gries counters, each carrying up to ``max_witnesses``.

    Args:
        k: number of counters (the classical summary size).
        max_witnesses: cap on stored witnesses per tracked item; caps the
            space at ``O(k * max_witnesses)`` words.
    """

    #: The counters merge like Misra-Gries for any stream split; the
    #: witness lists stay best-effort either way (that is the point of
    #: this heuristic).
    shard_routing = "any"

    def __init__(self, k: int, max_witnesses: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if max_witnesses < 1:
            raise ValueError(f"max_witnesses must be >= 1, got {max_witnesses}")
        self.k = k
        self.max_witnesses = max_witnesses
        self._counters: Dict[int, int] = {}
        self._witnesses: Dict[int, List[int]] = {}
        #: diagnostic: how many witnesses were discarded by decrements
        self.witnesses_lost = 0

    def process_item(self, item: StreamItem) -> None:
        """Process one (item, witness) arrival."""
        if item.is_delete:
            raise ValueError("Misra-Gries supports insertion-only streams")
        self._arrival(item.edge.a, item.edge.b)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Engine entry point; sequential under the hood.

        The decrement-all step couples every counter to every arrival,
        so unlike the paper's reservoir there is no order-free collapse
        of a chunk — the batch path just replays the chunk in order
        (bit-identical to :meth:`process_item` by construction).  The
        heuristic exists for honesty benchmarks, not throughput.
        """
        if sign is not None and np.any(sign != INSERT):
            raise ValueError("Misra-Gries supports insertion-only streams")
        # repro: allow-scalar-loop decrement-all couples every counter
        # to every arrival; no order-free collapse exists (see docstring)
        for a_item, b_item in zip(a.tolist(), b.tolist()):
            self._arrival(a_item, b_item)

    def _arrival(self, a: int, b: int) -> None:
        if a in self._counters:
            self._counters[a] += 1
            stored = self._witnesses[a]
            if len(stored) < self.max_witnesses:
                stored.append(b)
            return
        if len(self._counters) < self.k:
            self._counters[a] = 1
            self._witnesses[a] = [b]
            return
        # Decrement-all: every counter drops by one; zeroed counters are
        # evicted together with their entire witness lists.
        survivors_counts: Dict[int, int] = {}
        survivors_witnesses: Dict[int, List[int]] = {}
        for key, count in self._counters.items():
            if count > 1:
                survivors_counts[key] = count - 1
                survivors_witnesses[key] = self._witnesses[key]
            else:
                self.witnesses_lost += len(self._witnesses[key])
        self._counters = survivors_counts
        self._witnesses = survivors_witnesses

    def process(self, stream: EdgeStream) -> "MisraGriesWithWitnesses":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "MisraGriesWithWitnesses":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        summary stays queryable, so finalize returns the summary itself."""
        return self

    def merge(self, other: "MisraGriesWithWitnesses") -> "MisraGriesWithWitnesses":
        """Misra-Gries merge of the counters, best-effort witness union.

        Counters are added key-wise and folded with the standard
        mergeable-summaries cutoff; surviving items keep the union of
        both witness lists (duplicates removed, clipped to
        ``max_witnesses``), and evicted items' witnesses are counted as
        lost — the same failure mode the per-item decrement exhibits.
        """
        if not isinstance(other, MisraGriesWithWitnesses):
            raise ValueError(
                f"cannot merge MisraGriesWithWitnesses with "
                f"{type(other).__name__}"
            )
        if (self.k, self.max_witnesses) != (other.k, other.max_witnesses):
            raise ValueError(
                f"cannot merge (k={self.k}, max_witnesses="
                f"{self.max_witnesses}) with (k={other.k}, "
                f"max_witnesses={other.max_witnesses})"
            )
        combined: Dict[int, int] = dict(self._counters)
        for item, count in other._counters.items():
            combined[item] = combined.get(item, 0) + count
        combined = fold_counters(combined, self.k)
        witnesses: Dict[int, List[int]] = {}
        lost = self.witnesses_lost + other.witnesses_lost
        for item in set(self._witnesses) | set(other._witnesses):
            stored = list(self._witnesses.get(item, []))
            seen = set(stored)
            extra = [
                witness
                for witness in other._witnesses.get(item, [])
                if witness not in seen
            ]
            stored.extend(extra)
            if item in combined:
                witnesses[item] = stored[: self.max_witnesses]
                lost += len(stored) - len(witnesses[item])
            else:
                lost += len(stored)
        self._counters = combined
        self._witnesses = witnesses
        self.witnesses_lost = lost
        return self

    def split(self, n_shards: int) -> List["MisraGriesWithWitnesses"]:
        """``n_shards`` empty same-config shard summaries (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._counters:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def estimate(self, item: int) -> int:
        """Classical Misra–Gries frequency lower bound."""
        return self._counters.get(item, 0)

    def witnesses_of(self, item: int) -> List[int]:
        """Witnesses currently attached to ``item`` (possibly truncated
        by an earlier eviction)."""
        return list(self._witnesses.get(item, []))

    def result(self, d: int, alpha: float = 1.0) -> Neighbourhood:
        """Best-effort FEwW answer: the tracked item with the most
        witnesses, if it reaches ``d / alpha``.

        Raises:
            AlgorithmFailed: when no tracked item carries enough
            witnesses — the failure mode benchmark E13 measures.
        """
        best_item, best = None, []
        for item, stored in self._witnesses.items():
            if len(stored) > len(best):
                best_item, best = item, stored
        if best_item is None or len(best) < d / alpha:
            raise AlgorithmFailed(
                f"witness lists hold at most {len(best)} < {d}/{alpha} "
                f"entries ({self.witnesses_lost} witnesses were lost to "
                f"decrements)"
            )
        return Neighbourhood.of(best_item, best)

    def space_words(self) -> int:
        stored = sum(len(witnesses) for witnesses in self._witnesses.values())
        return 2 * vertex_words(len(self._counters)) + edge_words(stored)
