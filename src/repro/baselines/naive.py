"""Naive witness baselines.

Two trivial ways to solve FEwW, bracketing the paper's algorithms:

* :class:`FullStorage` stores *every* edge — always correct, space
  ``Θ(|E|)``, the upper bracket benchmarks compare against;
* :class:`FirstKWitnessCollector` keeps the first ``k`` witnesses of
  every A-vertex — correct whenever ``k >= d/α`` but space ``Θ(n k)``,
  showing that witness collection without sampling pays a factor ``n``.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.spacemeter import edge_words, vertex_words
from repro.streams.columnar import group_slices
from repro.streams.edge import DELETE, StreamItem
from repro.streams.stream import EdgeStream


class FullStorage:
    """Store the whole graph; answer any FEwW query exactly."""

    #: An edge's final membership depends on its whole update history,
    #: so shards must own vertices outright (see repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(self, n: int, m: int) -> None:
        self.n = n
        self.m = m
        self._neighbours: Dict[int, Set[int]] = {}

    def process_item(self, item: StreamItem) -> None:
        witnesses = self._neighbours.setdefault(item.edge.a, set())
        if item.is_insert:
            witnesses.add(item.edge.b)
        else:
            witnesses.discard(item.edge.b)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a column chunk of signed updates.

        Within a valid stream chunk each edge's membership after the
        chunk is decided by its *last* update, so the chunk is collapsed
        to one add/discard per distinct edge (grouped per vertex).  Final
        state is identical to per-item processing.
        """
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if len(a) == 0:
            return
        if sign is None:
            sign = np.ones(len(a), dtype=np.int64)
        flat = a * self.m + b
        reversed_unique, reversed_first = np.unique(flat[::-1], return_index=True)
        last_positions = len(flat) - 1 - reversed_first
        final_sign = np.asarray(sign)[last_positions]
        vertices = reversed_unique // self.m
        witnesses_col = reversed_unique % self.m
        order, starts, ends = group_slices(vertices)
        sorted_vertices = vertices[order]
        for group_start, group_end in zip(starts.tolist(), ends.tolist()):
            group = order[group_start:group_end]
            witnesses = self._neighbours.setdefault(
                int(sorted_vertices[group_start]), set()
            )
            inserts = final_sign[group] > 0
            witnesses.update(witnesses_col[group[inserts]].tolist())
            witnesses.difference_update(witnesses_col[group[~inserts]].tolist())

    def process(self, stream: EdgeStream) -> "FullStorage":
        for item in stream:
            self.process_item(item)
        return self

    def result(self, d: int, alpha: float = 1.0) -> Neighbourhood:
        """The maximum-degree vertex with all its witnesses.

        Raises:
            AlgorithmFailed: if no vertex meets ``d / alpha`` (the
            promise was violated).
        """
        best_vertex, best = None, set()
        for vertex, witnesses in self._neighbours.items():
            if len(witnesses) > len(best):
                best_vertex, best = vertex, witnesses
        if best_vertex is None or len(best) < d / alpha:
            raise AlgorithmFailed(f"no vertex of degree >= {d}/{alpha}")
        return Neighbourhood.of(best_vertex, best)

    def finalize(self) -> "FullStorage":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        stored graph stays queryable, so finalize returns the store."""
        return self

    def merge(self, other: "FullStorage") -> "FullStorage":
        """Union of two stores over vertex-disjoint sub-streams.

        Under vertex routing every A-vertex's updates live in exactly
        one shard, so the union of the per-shard neighbour sets is the
        exact final graph (bit-identical to a single pass).
        """
        if not isinstance(other, FullStorage):
            raise ValueError(
                f"cannot merge FullStorage with {type(other).__name__}"
            )
        if (self.n, self.m) != (other.n, other.m):
            raise ValueError(
                f"cannot merge FullStorage over ({self.n},{self.m}) with "
                f"({other.n},{other.m})"
            )
        for vertex, witnesses in other._neighbours.items():
            self._neighbours.setdefault(vertex, set()).update(witnesses)
        return self

    def split(self, n_shards: int) -> List["FullStorage"]:
        """``n_shards`` empty same-dimension shard stores (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._neighbours:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        stored = sum(len(witnesses) for witnesses in self._neighbours.values())
        return vertex_words(len(self._neighbours)) + edge_words(stored)


class FirstKWitnessCollector:
    """Keep the first ``k`` witnesses of every A-vertex (insertion-only).

    Correct for FEwW whenever ``k >= ceil(d / alpha)``, but stores up to
    ``n * k`` witnesses — the "no sampling" strawman whose space the
    benchmarks compare to Algorithm 2's ``n^{1/α} d`` term.
    """

    #: First-k witnesses are a per-vertex prefix of arrival order, so
    #: shards must own vertices outright (see repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(self, n: int, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.n = n
        self.k = k
        self._witnesses: Dict[int, List[int]] = {}
        self._degrees: Dict[int, int] = {}

    def process_item(self, item: StreamItem) -> None:
        if item.is_delete:
            raise ValueError("FirstKWitnessCollector supports insertion-only streams")
        a, b = item.edge.a, item.edge.b
        self._degrees[a] = self._degrees.get(a, 0) + 1
        stored = self._witnesses.setdefault(a, [])
        if len(stored) < self.k:
            stored.append(b)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a column chunk of insertions (identical to per-item)."""
        if sign is not None and np.any(sign == DELETE):
            raise ValueError("FirstKWitnessCollector supports insertion-only streams")
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if len(a) == 0:
            return
        order, starts, ends = group_slices(a)
        for group_start, group_end in zip(starts.tolist(), ends.tolist()):
            vertex = int(a[order[group_start]])
            count = group_end - group_start
            self._degrees[vertex] = self._degrees.get(vertex, 0) + count
            stored = self._witnesses.setdefault(vertex, [])
            room = self.k - len(stored)
            if room > 0:
                take = order[group_start : min(group_end, group_start + room)]
                stored.extend(b[take].tolist())

    def process(self, stream: EdgeStream) -> "FirstKWitnessCollector":
        for item in stream:
            self.process_item(item)
        return self

    def result(self, d: int, alpha: float = 1.0) -> Neighbourhood:
        """Highest-degree vertex with its stored witnesses.

        Raises:
            AlgorithmFailed: when the stored witnesses fall short of
            ``d / alpha`` (possible when ``k`` was set too small).
        """
        if not self._degrees:
            raise AlgorithmFailed("empty stream")
        best_vertex = max(self._degrees, key=self._degrees.__getitem__)
        witnesses = self._witnesses.get(best_vertex, [])
        if len(witnesses) < d / alpha:
            raise AlgorithmFailed(
                f"stored only {len(witnesses)} witnesses < {d}/{alpha}"
            )
        return Neighbourhood.of(best_vertex, witnesses)

    def finalize(self) -> "FirstKWitnessCollector":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        collector stays queryable, so finalize returns itself."""
        return self

    def merge(self, other: "FirstKWitnessCollector") -> "FirstKWitnessCollector":
        """Union of two collectors over vertex-disjoint sub-streams.

        Under vertex routing each vertex's first-``k`` prefix is
        computed entirely inside its owning shard, so the union is
        bit-identical to a single pass.  If a vertex somehow occurs in
        both operands (non-vertex-routed use), degrees are summed and
        the witness lists are concatenated with duplicates removed, then
        clipped to ``k`` — the CoreDiag-style dedup-at-merge rule.
        """
        if not isinstance(other, FirstKWitnessCollector):
            raise ValueError(
                f"cannot merge FirstKWitnessCollector with "
                f"{type(other).__name__}"
            )
        if (self.n, self.k) != (other.n, other.k):
            raise ValueError(
                f"cannot merge collector (n={self.n}, k={self.k}) with "
                f"(n={other.n}, k={other.k})"
            )
        for vertex, degree in other._degrees.items():
            self._degrees[vertex] = self._degrees.get(vertex, 0) + degree
        for vertex, witnesses in other._witnesses.items():
            stored = self._witnesses.setdefault(vertex, [])
            seen = set(stored)
            for witness in witnesses:
                if len(stored) >= self.k:
                    break
                if witness not in seen:
                    stored.append(witness)
                    seen.add(witness)
        return self

    def split(self, n_shards: int) -> List["FirstKWitnessCollector"]:
        """``n_shards`` empty same-``k`` shard collectors (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._degrees:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        stored = sum(len(witnesses) for witnesses in self._witnesses.values())
        return (
            vertex_words(len(self._degrees)) * 2  # id + degree per vertex
            + edge_words(stored)
        )
