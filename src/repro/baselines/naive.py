"""Naive witness baselines.

Two trivial ways to solve FEwW, bracketing the paper's algorithms:

* :class:`FullStorage` stores *every* edge — always correct, space
  ``Θ(|E|)``, the upper bracket benchmarks compare against;
* :class:`FirstKWitnessCollector` keeps the first ``k`` witnesses of
  every A-vertex — correct whenever ``k >= d/α`` but space ``Θ(n k)``,
  showing that witness collection without sampling pays a factor ``n``.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.neighbourhood import AlgorithmFailed, Neighbourhood
from repro.spacemeter import edge_words, vertex_words
from repro.streams.columnar import group_slices
from repro.streams.edge import DELETE, StreamItem
from repro.streams.stream import EdgeStream


class FullStorage:
    """Store the whole graph; answer any FEwW query exactly.

    Batch updates are *deferred*: :meth:`process_batch` only copies the
    column chunk onto a pending list, and the materialised
    neighbour-set dictionary is (re)built lazily on first read — an
    edge's final membership is decided by its **last** update, so one
    last-update-wins collapse over the whole pending backlog lands on
    exactly the state eager per-chunk application would have reached.
    That moves the ``np.unique`` plus per-vertex Python set work off
    the per-chunk hot path (it now runs once per query/merge instead of
    once per chunk) and lets it operate on globally sorted distinct
    edges, where the group boundaries fall out of the sort for free.
    """

    #: An edge's final membership depends on its whole update history,
    #: so shards must own vertices outright (see repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(self, n: int, m: int) -> None:
        self.n = n
        self.m = m
        self._store: Dict[int, Set[int]] = {}
        #: Unflushed (a, b, sign-or-None) column chunks, arrival order.
        self._pending: List[
            tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]
        ] = []

    @property
    def _neighbours(self) -> Dict[int, Set[int]]:
        """The materialised vertex -> witness-set map (flushes first)."""
        self._flush()
        return self._store

    def process_item(self, item: StreamItem) -> None:
        if self._pending:
            self._flush()
        witnesses = self._store.setdefault(item.edge.a, set())
        if item.is_insert:
            witnesses.add(item.edge.b)
        else:
            witnesses.discard(item.edge.b)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Buffer a column chunk of signed updates (deferred netting).

        The columns are copied (chunk buffers may be recycled by the
        caller, e.g. shared-memory transport segments) and applied on
        the next read through :meth:`_flush`; final state is identical
        to per-item processing.
        """
        if len(a) == 0:
            return
        self._pending.append(
            (
                np.array(a, dtype=np.int64),
                np.array(b, dtype=np.int64),
                None if sign is None else np.array(sign, dtype=np.int64),
            )
        )

    def _flush(self) -> None:
        """Collapse the pending backlog into the neighbour sets.

        One ``np.unique`` over the concatenated flat edge keys (scanned
        in reverse so the first hit per edge is its last update) yields
        the distinct edges in ascending order — vertex groups are then
        contiguous runs, no argsort needed — and each edge contributes
        a single add/discard decided by its final sign.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if len(pending) == 1:
            a, b, sign = pending[0]
        else:
            a = np.concatenate([chunk[0] for chunk in pending])
            b = np.concatenate([chunk[1] for chunk in pending])
            if all(chunk[2] is None for chunk in pending):
                sign = None
            else:
                sign = np.concatenate(
                    [
                        np.ones(len(chunk[0]), dtype=np.int64)
                        if chunk[2] is None
                        else chunk[2]
                        for chunk in pending
                    ]
                )
        flat = a * self.m + b
        reversed_unique, reversed_first = np.unique(flat[::-1], return_index=True)
        vertices = reversed_unique // self.m
        witnesses_col = reversed_unique % self.m
        cuts = np.flatnonzero(vertices[1:] != vertices[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [len(vertices)]))
        if sign is None:
            # Insertion-only backlog: every distinct edge is present.
            for group_start, group_end in zip(starts.tolist(), ends.tolist()):
                self._store.setdefault(
                    int(vertices[group_start]), set()
                ).update(witnesses_col[group_start:group_end].tolist())
            return
        last_positions = len(flat) - 1 - reversed_first
        final_sign = sign[last_positions]
        for group_start, group_end in zip(starts.tolist(), ends.tolist()):
            witnesses = self._store.setdefault(
                int(vertices[group_start]), set()
            )
            inserts = final_sign[group_start:group_end] > 0
            group_witnesses = witnesses_col[group_start:group_end]
            witnesses.update(group_witnesses[inserts].tolist())
            witnesses.difference_update(group_witnesses[~inserts].tolist())

    def process(self, stream: EdgeStream) -> "FullStorage":
        for item in stream:
            self.process_item(item)
        return self

    def result(self, d: int, alpha: float = 1.0) -> Neighbourhood:
        """The maximum-degree vertex with all its witnesses.

        Raises:
            AlgorithmFailed: if no vertex meets ``d / alpha`` (the
            promise was violated).
        """
        best_vertex, best = None, set()
        for vertex, witnesses in self._neighbours.items():
            if len(witnesses) > len(best):
                best_vertex, best = vertex, witnesses
        if best_vertex is None or len(best) < d / alpha:
            raise AlgorithmFailed(f"no vertex of degree >= {d}/{alpha}")
        return Neighbourhood.of(best_vertex, best)

    def finalize(self) -> "FullStorage":
        """Engine hook (:class:`repro.engine.StreamProcessor`):
        materialises the pending backlog, then returns the store —
        still queryable, now fully caught up."""
        self._flush()
        return self

    def merge(self, other: "FullStorage") -> "FullStorage":
        """Union of two stores over vertex-disjoint sub-streams.

        Under vertex routing every A-vertex's updates live in exactly
        one shard, so the union of the per-shard neighbour sets is the
        exact final graph (bit-identical to a single pass).
        """
        if not isinstance(other, FullStorage):
            raise ValueError(
                f"cannot merge FullStorage with {type(other).__name__}"
            )
        if (self.n, self.m) != (other.n, other.m):
            raise ValueError(
                f"cannot merge FullStorage over ({self.n},{self.m}) with "
                f"({other.n},{other.m})"
            )
        self._flush()
        other._flush()
        for vertex, witnesses in other._store.items():
            self._store.setdefault(vertex, set()).update(witnesses)
        return self

    def split(self, n_shards: int) -> List["FullStorage"]:
        """``n_shards`` empty same-dimension shard stores (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._store or self._pending:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        self._flush()
        stored = sum(len(witnesses) for witnesses in self._store.values())
        return vertex_words(len(self._store)) + edge_words(stored)


class FirstKWitnessCollector:
    """Keep the first ``k`` witnesses of every A-vertex (insertion-only).

    Correct for FEwW whenever ``k >= ceil(d / alpha)``, but stores up to
    ``n * k`` witnesses — the "no sampling" strawman whose space the
    benchmarks compare to Algorithm 2's ``n^{1/α} d`` term.
    """

    #: First-k witnesses are a per-vertex prefix of arrival order, so
    #: shards must own vertices outright (see repro.engine.protocol).
    shard_routing = "vertex"

    def __init__(self, n: int, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.n = n
        self.k = k
        self._witnesses: Dict[int, List[int]] = {}
        self._degrees: Dict[int, int] = {}

    def process_item(self, item: StreamItem) -> None:
        if item.is_delete:
            raise ValueError("FirstKWitnessCollector supports insertion-only streams")
        a, b = item.edge.a, item.edge.b
        self._degrees[a] = self._degrees.get(a, 0) + 1
        stored = self._witnesses.setdefault(a, [])
        if len(stored) < self.k:
            stored.append(b)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a column chunk of insertions (identical to per-item)."""
        if sign is not None and np.any(sign == DELETE):
            raise ValueError("FirstKWitnessCollector supports insertion-only streams")
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if len(a) == 0:
            return
        order, starts, ends = group_slices(a)
        for group_start, group_end in zip(starts.tolist(), ends.tolist()):
            vertex = int(a[order[group_start]])
            count = group_end - group_start
            self._degrees[vertex] = self._degrees.get(vertex, 0) + count
            stored = self._witnesses.setdefault(vertex, [])
            room = self.k - len(stored)
            if room > 0:
                take = order[group_start : min(group_end, group_start + room)]
                stored.extend(b[take].tolist())

    def process(self, stream: EdgeStream) -> "FirstKWitnessCollector":
        for item in stream:
            self.process_item(item)
        return self

    def result(self, d: int, alpha: float = 1.0) -> Neighbourhood:
        """Highest-degree vertex with its stored witnesses.

        Raises:
            AlgorithmFailed: when the stored witnesses fall short of
            ``d / alpha`` (possible when ``k`` was set too small).
        """
        if not self._degrees:
            raise AlgorithmFailed("empty stream")
        best_vertex = max(self._degrees, key=self._degrees.__getitem__)
        witnesses = self._witnesses.get(best_vertex, [])
        if len(witnesses) < d / alpha:
            raise AlgorithmFailed(
                f"stored only {len(witnesses)} witnesses < {d}/{alpha}"
            )
        return Neighbourhood.of(best_vertex, witnesses)

    def finalize(self) -> "FirstKWitnessCollector":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        collector stays queryable, so finalize returns itself."""
        return self

    def merge(self, other: "FirstKWitnessCollector") -> "FirstKWitnessCollector":
        """Union of two collectors over vertex-disjoint sub-streams.

        Under vertex routing each vertex's first-``k`` prefix is
        computed entirely inside its owning shard, so the union is
        bit-identical to a single pass.  If a vertex somehow occurs in
        both operands (non-vertex-routed use), degrees are summed and
        the witness lists are concatenated with duplicates removed, then
        clipped to ``k`` — the CoreDiag-style dedup-at-merge rule.
        """
        if not isinstance(other, FirstKWitnessCollector):
            raise ValueError(
                f"cannot merge FirstKWitnessCollector with "
                f"{type(other).__name__}"
            )
        if (self.n, self.k) != (other.n, other.k):
            raise ValueError(
                f"cannot merge collector (n={self.n}, k={self.k}) with "
                f"(n={other.n}, k={other.k})"
            )
        for vertex, degree in other._degrees.items():
            self._degrees[vertex] = self._degrees.get(vertex, 0) + degree
        for vertex, witnesses in other._witnesses.items():
            stored = self._witnesses.setdefault(vertex, [])
            seen = set(stored)
            for witness in witnesses:
                if len(stored) >= self.k:
                    break
                if witness not in seen:
                    stored.append(witness)
                    seen.add(witness)
        return self

    def split(self, n_shards: int) -> List["FirstKWitnessCollector"]:
        """``n_shards`` empty same-``k`` shard collectors (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._degrees:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        stored = sum(len(witnesses) for witnesses in self._witnesses.values())
        return (
            vertex_words(len(self._degrees)) * 2  # id + degree per vertex
            + edge_words(stored)
        )
