"""Misra–Gries frequent elements (1982) — the paper's reference [37].

With ``k`` counters over a stream of length ``L``, every item's estimate
satisfies ``true - L/(k+1) <= estimate <= true``; in particular every
item of frequency above ``L/(k+1)`` survives in the summary.  Space is
``O(k)`` words — proportional to ``m/d`` when tuned for threshold ``d``
over a length-``m`` stream, the inverse behaviour §1.3 contrasts with
FEwW.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.streams.edge import DELETE, StreamItem
from repro.streams.stream import EdgeStream


def fold_counters(combined: Dict[int, int], k: int) -> Dict[int, int]:
    """The mergeable-summaries ``k``-limit (Agarwal et al.): when more
    than ``k`` counters survive a key-wise addition, subtract the
    (k+1)-st largest count from all and drop the non-positive ones.

    Shared by Misra-Gries batch ingestion, :meth:`MisraGries.merge`,
    and the witness-carrying heuristic's merge — one copy of the subtle
    cutoff rule.
    """
    if len(combined) > k:
        cutoff = sorted(combined.values(), reverse=True)[k]
        combined = {
            item: count - cutoff
            for item, count in combined.items()
            if count > cutoff
        }
    return combined


class MisraGries:
    """Deterministic frequent-elements summary with ``k`` counters.

    Args:
        k: number of counters; guarantees error at most ``L / (k+1)``
            on a length-``L`` stream.
    """

    #: Counter summaries are classically mergeable for any stream split
    #: (see :mod:`repro.engine.protocol`).
    shard_routing = "any"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._counters: Dict[int, int] = {}
        self._length = 0

    def update(self, item: int, weight: int = 1) -> None:
        """Process ``weight`` occurrences of ``item``."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._length += weight
        self._apply(item, weight)

    def _apply(self, item: int, weight: int) -> None:
        """Counter maintenance without length accounting (recursive for
        weights that span a decrement round)."""
        if item in self._counters:
            self._counters[item] += weight
            return
        if len(self._counters) < self.k:
            self._counters[item] = weight
            return
        # Decrement-all step; weights > 1 handled by repeated decrement.
        decrement = min(weight, min(self._counters.values()))
        survivors = {}
        for key, count in self._counters.items():
            if count > decrement:
                survivors[key] = count - decrement
        self._counters = survivors
        leftover = weight - decrement
        if leftover > 0:
            self._apply(item, leftover)

    def process_item(self, item: StreamItem) -> None:
        """Adapter: treat the stream's A-vertex as the item (witness ignored)."""
        if item.is_delete:
            raise ValueError("Misra-Gries supports insertion-only streams")
        self.update(item.edge.a)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray = None,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Chunk-accumulate-then-merge batch ingestion.

        Exact chunk frequencies are computed with one ``np.unique`` pass
        (an error-free summary of the chunk) and folded into the running
        counters with the mergeable-summaries construction — add
        key-wise, then subtract the (k+1)-st largest count if more than
        ``k`` survive.  The result is a valid Misra-Gries summary of
        everything seen (undercount at most ``L/(k+1)``), though counter
        values may differ from the per-item decrement schedule, which is
        arrival-order dependent.
        """
        if sign is not None and np.any(sign == DELETE):
            raise ValueError("Misra-Gries supports insertion-only streams")
        if len(a) == 0:
            return
        items, counts = np.unique(np.asarray(a, dtype=np.int64), return_counts=True)
        combined: Dict[int, int] = dict(self._counters)
        for item, count in zip(items.tolist(), counts.tolist()):
            combined[item] = combined.get(item, 0) + count
        self._counters = self._fold(combined)
        self._length += len(a)

    def _fold(self, combined: Dict[int, int]) -> Dict[int, int]:
        """Apply :func:`fold_counters` with this summary's ``k``."""
        return fold_counters(combined, self.k)

    def process(self, stream: EdgeStream) -> "MisraGries":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "MisraGries":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        summary stays queryable, so finalize returns the summary itself."""
        return self

    def estimate(self, item: int) -> int:
        """Lower-bound frequency estimate (0 if not tracked)."""
        return self._counters.get(item, 0)

    def error_bound(self) -> float:
        """Maximum undercount: ``L / (k+1)``."""
        return self._length / (self.k + 1)

    def candidates(self, threshold: int) -> List[Tuple[int, int]]:
        """Items whose true count may reach ``threshold``, with estimates.

        Includes every item whose estimate plus the error bound reaches
        the threshold — a superset of the true heavy hitters.
        """
        bound = self.error_bound()
        return sorted(
            (item, count)
            for item, count in self._counters.items()
            if count + bound >= threshold
        )

    def merge(self, other: "MisraGries") -> "MisraGries":
        """Combine two summaries of disjoint sub-streams (mergeability).

        Counters are added key-wise; if more than ``k`` survive, the
        (k+1)-st largest count is subtracted from all (the standard
        mergeable-summaries construction), preserving the
        ``error <= L_total / (k+1)`` guarantee for the concatenated
        stream.  Both summaries must have the same ``k``.
        """
        if not isinstance(other, MisraGries):
            raise ValueError(
                f"cannot merge MisraGries with {type(other).__name__}"
            )
        if self.k != other.k:
            raise ValueError(f"cannot merge k={self.k} with k={other.k}")
        combined: Dict[int, int] = dict(self._counters)
        for item, count in other._counters.items():
            combined[item] = combined.get(item, 0) + count
        merged = MisraGries(self.k)
        merged._counters = self._fold(combined)
        merged._length = self._length + other._length
        return merged

    def split(self, n_shards: int) -> List["MisraGries"]:
        """``n_shards`` empty same-``k`` shard summaries (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._length:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        """Two words per counter (item id + count) plus the length."""
        return 2 * len(self._counters) + 1
