"""SpaceSaving (Metwally, Agrawal, El Abbadi 2005) — references [35, 36].

Maintains ``k`` (item, count) pairs; an unseen item replaces the
current minimum, inheriting its count plus one.  Every estimate
overcounts by at most the minimum counter, which is at most ``L / k``.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.streams.edge import DELETE, StreamItem
from repro.streams.stream import EdgeStream


class SpaceSaving:
    """Frequent-elements summary with ``k`` always-full counters.

    Args:
        k: number of counters; overestimate error is at most ``L/k``.
    """

    #: Counter summaries are classically mergeable for any stream split
    #: (see :mod:`repro.engine.protocol`).
    shard_routing = "any"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._counters: Dict[int, int] = {}
        #: per-item upper bound on the overcount (the evicted count).
        self._overestimates: Dict[int, int] = {}
        self._length = 0

    def update(self, item: int, weight: int = 1) -> None:
        """Process ``weight`` occurrences of ``item``."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._length += weight
        if item in self._counters:
            self._counters[item] += weight
            return
        if len(self._counters) < self.k:
            self._counters[item] = weight
            self._overestimates[item] = 0
            return
        victim = min(self._counters, key=self._counters.__getitem__)
        inherited = self._counters.pop(victim)
        self._overestimates.pop(victim, None)
        self._counters[item] = inherited + weight
        self._overestimates[item] = inherited

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray = None,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Weighted batch ingestion.

        Chunk frequencies are accumulated with one ``np.unique`` pass and
        applied as weighted updates in order of each item's first
        appearance.  This matches per-item processing exactly when the
        chunk is grouped by item, and in general preserves SpaceSaving's
        invariants (estimates upper-bound true counts, the minimum
        counter bounds the overestimate) while the per-counter values may
        differ from a fully interleaved arrival order.
        """
        if sign is not None and np.any(sign == DELETE):
            raise ValueError("SpaceSaving supports insertion-only streams")
        if len(a) == 0:
            return
        items, first_positions, counts = np.unique(
            np.asarray(a, dtype=np.int64), return_index=True, return_counts=True
        )
        appearance = np.argsort(first_positions, kind="stable")
        for slot in appearance.tolist():
            self.update(int(items[slot]), int(counts[slot]))

    def process_item(self, item: StreamItem) -> None:
        """Adapter: A-vertex is the item; witnesses are ignored."""
        if item.is_delete:
            raise ValueError("SpaceSaving supports insertion-only streams")
        self.update(item.edge.a)

    def process(self, stream: EdgeStream) -> "SpaceSaving":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "SpaceSaving":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        summary stays queryable, so finalize returns the summary itself."""
        return self

    def estimate(self, item: int) -> int:
        """Upper-bound frequency estimate (0 if not tracked)."""
        return self._counters.get(item, 0)

    def guaranteed_count(self, item: int) -> int:
        """Certified lower bound: estimate minus the inherited overcount."""
        if item not in self._counters:
            return 0
        return self._counters[item] - self._overestimates.get(item, 0)

    def candidates(self, threshold: int) -> List[Tuple[int, int]]:
        """Tracked items whose estimate reaches ``threshold``."""
        return sorted(
            (item, count)
            for item, count in self._counters.items()
            if count >= threshold
        )

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two summaries of disjoint sub-streams (mergeability).

        The classical mergeable-summaries construction (Agarwal et al.):
        each item's merged estimate adds its per-summary estimates, where
        an item untracked by a full summary contributes that summary's
        minimum counter (an upper bound on its true count there); then
        only the ``k`` largest merged counters are kept.  The merged
        summary still brackets every item's true count:
        ``true <= estimate <= true + L_total / k``.  Both summaries must
        have the same ``k``.
        """
        if not isinstance(other, SpaceSaving):
            raise ValueError(
                f"cannot merge SpaceSaving with {type(other).__name__}"
            )
        if self.k != other.k:
            raise ValueError(f"cannot merge k={self.k} with k={other.k}")
        # A summary that never filled up tracks every item it saw, so an
        # untracked item's true count there is 0, not the minimum counter.
        floor_self = (
            min(self._counters.values()) if len(self._counters) >= self.k else 0
        )
        floor_other = (
            min(other._counters.values()) if len(other._counters) >= other.k else 0
        )
        combined: Dict[int, int] = {}
        overestimates: Dict[int, int] = {}
        for item in set(self._counters) | set(other._counters):
            mine = self._counters.get(item)
            theirs = other._counters.get(item)
            estimate = (mine if mine is not None else floor_self) + (
                theirs if theirs is not None else floor_other
            )
            certified = 0
            if mine is not None:
                certified += mine - self._overestimates.get(item, 0)
            if theirs is not None:
                certified += theirs - other._overestimates.get(item, 0)
            combined[item] = estimate
            overestimates[item] = estimate - certified
        if len(combined) > self.k:
            kept = sorted(combined, key=combined.__getitem__, reverse=True)[
                : self.k
            ]
            combined = {item: combined[item] for item in kept}
            overestimates = {item: overestimates[item] for item in kept}
        merged = SpaceSaving(self.k)
        merged._counters = combined
        merged._overestimates = overestimates
        merged._length = self._length + other._length
        return merged

    def split(self, n_shards: int) -> List["SpaceSaving"]:
        """``n_shards`` empty same-``k`` shard summaries (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._length:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        """Three words per counter (item, count, overestimate) + length."""
        return 3 * len(self._counters) + 1
