"""SpaceSaving (Metwally, Agrawal, El Abbadi 2005) — references [35, 36].

Maintains ``k`` (item, count) pairs; an unseen item replaces the
current minimum, inheriting its count plus one.  Every estimate
overcounts by at most the minimum counter, which is at most ``L / k``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.streams.edge import DELETE, StreamItem
from repro.streams.stream import EdgeStream


class SpaceSaving:
    """Frequent-elements summary with ``k`` always-full counters.

    Args:
        k: number of counters; overestimate error is at most ``L/k``.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._counters: Dict[int, int] = {}
        #: per-item upper bound on the overcount (the evicted count).
        self._overestimates: Dict[int, int] = {}
        self._length = 0

    def update(self, item: int, weight: int = 1) -> None:
        """Process ``weight`` occurrences of ``item``."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._length += weight
        if item in self._counters:
            self._counters[item] += weight
            return
        if len(self._counters) < self.k:
            self._counters[item] = weight
            self._overestimates[item] = 0
            return
        victim = min(self._counters, key=self._counters.__getitem__)
        inherited = self._counters.pop(victim)
        self._overestimates.pop(victim, None)
        self._counters[item] = inherited + weight
        self._overestimates[item] = inherited

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray = None,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Weighted batch ingestion.

        Chunk frequencies are accumulated with one ``np.unique`` pass and
        applied as weighted updates in order of each item's first
        appearance.  This matches per-item processing exactly when the
        chunk is grouped by item, and in general preserves SpaceSaving's
        invariants (estimates upper-bound true counts, the minimum
        counter bounds the overestimate) while the per-counter values may
        differ from a fully interleaved arrival order.
        """
        if sign is not None and np.any(sign == DELETE):
            raise ValueError("SpaceSaving supports insertion-only streams")
        if len(a) == 0:
            return
        items, first_positions, counts = np.unique(
            np.asarray(a, dtype=np.int64), return_index=True, return_counts=True
        )
        appearance = np.argsort(first_positions, kind="stable")
        for slot in appearance.tolist():
            self.update(int(items[slot]), int(counts[slot]))

    def process_item(self, item: StreamItem) -> None:
        """Adapter: A-vertex is the item; witnesses are ignored."""
        if item.is_delete:
            raise ValueError("SpaceSaving supports insertion-only streams")
        self.update(item.edge.a)

    def process(self, stream: EdgeStream) -> "SpaceSaving":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "SpaceSaving":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        summary stays queryable, so finalize returns the summary itself."""
        return self

    def estimate(self, item: int) -> int:
        """Upper-bound frequency estimate (0 if not tracked)."""
        return self._counters.get(item, 0)

    def guaranteed_count(self, item: int) -> int:
        """Certified lower bound: estimate minus the inherited overcount."""
        if item not in self._counters:
            return 0
        return self._counters[item] - self._overestimates.get(item, 0)

    def candidates(self, threshold: int) -> List[Tuple[int, int]]:
        """Tracked items whose estimate reaches ``threshold``."""
        return sorted(
            (item, count)
            for item, count in self._counters.items()
            if count >= threshold
        )

    def space_words(self) -> int:
        """Three words per counter (item, count, overestimate) + length."""
        return 3 * len(self._counters) + 1
