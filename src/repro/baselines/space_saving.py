"""SpaceSaving (Metwally, Agrawal, El Abbadi 2005) — references [35, 36].

Maintains ``k`` (item, count) pairs; an unseen item replaces the
current minimum, inheriting its count plus one.  Every estimate
overcounts by at most the minimum counter, which is at most ``L / k``.

The counter store is array-backed: per-slot NumPy columns for values,
overestimates, and tracking-order stamps, plus item↔slot maps.  Eviction
is an ``np.argmin`` over a fused ``value * 2^20 + stamp`` key column, so
the victim is the minimum-valued counter with the *oldest* stamp — the
same item the classic dict implementation's ``min()`` scan returned
(dict insertion order is tracking order, and ``min`` keeps the first
minimum it sees).  When total weight approaches the fused key's value
capacity the summary switches to a wide eviction path over the separate
value/stamp columns; semantics are identical either way.
"""

from __future__ import annotations

import copy
import heapq
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.streams.edge import DELETE, StreamItem
from repro.streams.stream import EdgeStream

#: Stamps occupy the low bits of the fused eviction key.
_STAMP_MOD = 1 << 20

#: Counter values below this fit in the fused key's high bits with slack
#: (``VALUE_CAP * STAMP_MOD == 2^62 < 2^63``).  No counter can exceed the
#: total processed weight, so ``_length`` is checked against this cap.
_VALUE_CAP = 1 << 42


class SpaceSaving:
    """Frequent-elements summary with ``k`` always-full counters.

    Args:
        k: number of counters; overestimate error is at most ``L/k``.
    """

    #: Counter summaries are classically mergeable for any stream split
    #: (see :mod:`repro.engine.protocol`).
    shard_routing = "any"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._values = np.zeros(k, dtype=np.int64)
        #: per-slot upper bound on the overcount (the evicted count).
        self._overs = np.zeros(k, dtype=np.int64)
        #: tracking-order stamps: lower stamp == started tracking earlier.
        self._stamps = np.zeros(k, dtype=np.int64)
        #: fused ``value * _STAMP_MOD + stamp`` eviction keys.
        self._keys = np.zeros(k, dtype=np.int64)
        self._slot_items: List[int] = []
        self._slots: Dict[int, int] = {}
        self._size = 0
        self._next_stamp = 0
        self._wide = False
        self._length = 0

    @property
    def _counters(self) -> Dict[int, int]:
        """Tracked counts as a dict in tracking order (oldest first).

        Reconstructed view of the array store; matches the dict the
        classic implementation maintained (insertion order = tracking
        order).  For reading only — mutations do not write back.
        """
        order = np.argsort(self._stamps[: self._size], kind="stable")
        return {
            self._slot_items[slot]: int(self._values[slot])
            for slot in order.tolist()
        }

    @property
    def _overestimates(self) -> Dict[int, int]:
        """Per-item overcount bounds in tracking order (read-only view)."""
        order = np.argsort(self._stamps[: self._size], kind="stable")
        return {
            self._slot_items[slot]: int(self._overs[slot])
            for slot in order.tolist()
        }

    def _take_stamp(self) -> int:
        """Next tracking-order stamp, renumbering when the fused-key
        stamp field would overflow (wide mode has no stamp limit)."""
        if not self._wide and self._next_stamp >= _STAMP_MOD:
            self._renumber_stamps()
        stamp = self._next_stamp
        self._next_stamp += 1
        return stamp

    def _renumber_stamps(self) -> None:
        """Compact stamps to ``0..size-1`` preserving tracking order."""
        size = self._size
        order = np.argsort(self._stamps[:size], kind="stable")
        ranks = np.empty(size, dtype=np.int64)
        ranks[order] = np.arange(size, dtype=np.int64)
        self._stamps[:size] = ranks
        self._keys[:size] = self._values[:size] * _STAMP_MOD + ranks
        self._next_stamp = size

    def _widen(self) -> None:
        """Abandon fused keys; evict via the value/stamp columns instead."""
        self._wide = True

    def update(self, item: int, weight: int = 1) -> None:
        """Process ``weight`` occurrences of ``item``."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._length += weight
        if not self._wide and self._length >= _VALUE_CAP:
            self._widen()
        self._apply(item, weight)

    def _apply(self, item: int, weight: int) -> None:
        """Counter maintenance without length accounting or validation."""
        slot = self._slots.get(item)
        if slot is not None:
            self._values[slot] += weight
            if not self._wide:
                self._keys[slot] += weight * _STAMP_MOD
            return
        if self._size < self.k:
            slot = self._size
            self._size += 1
            self._slot_items.append(item)
            self._slots[item] = slot
            stamp = self._take_stamp()
            self._values[slot] = weight
            self._overs[slot] = 0
            self._stamps[slot] = stamp
            if not self._wide:
                self._keys[slot] = weight * _STAMP_MOD + stamp
            return
        if self._wide:
            minimum = self._values.min()
            candidates = np.flatnonzero(self._values == minimum)
            if len(candidates) == 1:
                slot = int(candidates[0])
            else:
                slot = int(candidates[np.argmin(self._stamps[candidates])])
        else:
            slot = int(np.argmin(self._keys))
        inherited = int(self._values[slot])
        del self._slots[self._slot_items[slot]]
        self._slot_items[slot] = item
        self._slots[item] = slot
        stamp = self._take_stamp()
        value = inherited + weight
        self._values[slot] = value
        self._overs[slot] = inherited
        self._stamps[slot] = stamp
        if not self._wide:
            self._keys[slot] = value * _STAMP_MOD + stamp

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray = None,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Weighted batch ingestion.

        Chunk frequencies are accumulated with one ``np.unique`` pass and
        applied as weighted updates in order of each item's first
        appearance — straight into the array store, with no public
        ``update`` call per distinct item.  This matches per-item
        processing exactly when the chunk is grouped by item, and in
        general preserves SpaceSaving's invariants (estimates upper-bound
        true counts, the minimum counter bounds the overestimate) while
        the per-counter values may differ from a fully interleaved
        arrival order.
        """
        if sign is not None and np.any(sign == DELETE):
            raise ValueError("SpaceSaving supports insertion-only streams")
        if len(a) == 0:
            return
        items, first_positions, counts = np.unique(
            np.asarray(a, dtype=np.int64), return_index=True, return_counts=True
        )
        appearance = np.argsort(first_positions, kind="stable")
        self._length += len(a)
        if not self._wide and self._length >= _VALUE_CAP:
            self._widen()
        pairs = zip(items[appearance].tolist(), counts[appearance].tolist())
        if self._wide or len(items) >= _STAMP_MOD - self.k:
            apply = self._apply
            for item, weight in pairs:
                apply(item, weight)
        else:
            self._batch_apply(pairs, len(items))

    def _batch_apply(self, pairs: Iterable[Tuple[int, int]], distinct: int) -> None:
        """Sequential weighted updates at batch speed (non-wide mode).

        Fused keys order exactly by ``(value, stamp)``, so the eviction
        cascade runs on a lazy-invalidation ``heapq`` of plain-int keys —
        no per-item NumPy scalar ops — and the victim of every pop is the
        same counter the column ``argmin`` (and the classic dict ``min``
        scan) would pick.  Stale heap entries are recognised because keys
        embed unique stamps: a key missing from ``key_slot`` was
        superseded.  The NumPy columns are written back once at the end;
        the result is identical to applying the updates one by one.
        """
        if self._next_stamp + distinct >= _STAMP_MOD:
            self._renumber_stamps()
        size = self._size
        keys = self._keys[:size].tolist()
        overs = self._overs[:size].tolist()
        heap = keys.copy()
        heapq.heapify(heap)
        key_slot = {key: slot for slot, key in enumerate(keys)}
        slots = self._slots
        slot_items = self._slot_items
        k = self.k
        next_stamp = self._next_stamp
        push = heapq.heappush
        pop = heapq.heappop
        for item, weight in pairs:
            slot = slots.get(item)
            if slot is not None:
                old_key = keys[slot]
                new_key = old_key + weight * _STAMP_MOD
                keys[slot] = new_key
                del key_slot[old_key]
                key_slot[new_key] = slot
                push(heap, new_key)
                continue
            if len(keys) < k:
                slot = len(keys)
                key = weight * _STAMP_MOD + next_stamp
                next_stamp += 1
                keys.append(key)
                overs.append(0)
                slot_items.append(item)
                slots[item] = slot
                key_slot[key] = slot
                push(heap, key)
                continue
            while True:
                key = pop(heap)
                slot = key_slot.get(key)
                if slot is not None:
                    break
            inherited = key // _STAMP_MOD
            del key_slot[key]
            del slots[slot_items[slot]]
            slot_items[slot] = item
            slots[item] = slot
            new_key = (inherited + weight) * _STAMP_MOD + next_stamp
            next_stamp += 1
            keys[slot] = new_key
            overs[slot] = inherited
            key_slot[new_key] = slot
            push(heap, new_key)
        self._next_stamp = next_stamp
        size = len(keys)
        self._size = size
        fused = np.array(keys, dtype=np.int64)
        self._keys[:size] = fused
        self._values[:size] = fused // _STAMP_MOD
        self._stamps[:size] = fused % _STAMP_MOD
        self._overs[:size] = overs

    def process_item(self, item: StreamItem) -> None:
        """Adapter: A-vertex is the item; witnesses are ignored."""
        if item.is_delete:
            raise ValueError("SpaceSaving supports insertion-only streams")
        self.update(item.edge.a)

    def process(self, stream: EdgeStream) -> "SpaceSaving":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "SpaceSaving":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        summary stays queryable, so finalize returns the summary itself."""
        return self

    def estimate(self, item: int) -> int:
        """Upper-bound frequency estimate (0 if not tracked)."""
        slot = self._slots.get(item)
        return int(self._values[slot]) if slot is not None else 0

    def guaranteed_count(self, item: int) -> int:
        """Certified lower bound: estimate minus the inherited overcount."""
        slot = self._slots.get(item)
        if slot is None:
            return 0
        return int(self._values[slot] - self._overs[slot])

    def candidates(self, threshold: int) -> List[Tuple[int, int]]:
        """Tracked items whose estimate reaches ``threshold``."""
        return sorted(
            (self._slot_items[slot], int(self._values[slot]))
            for slot in range(self._size)
            if self._values[slot] >= threshold
        )

    def _load(
        self,
        counters: Dict[int, int],
        overestimates: Dict[int, int],
        length: int,
    ) -> None:
        """Populate an empty summary from dicts, stamping items in dict
        iteration order (used by :meth:`merge`)."""
        for item, value in counters.items():
            slot = self._size
            self._size += 1
            self._slot_items.append(item)
            self._slots[item] = slot
            self._values[slot] = value
            self._overs[slot] = overestimates.get(item, 0)
            self._stamps[slot] = slot
        self._next_stamp = self._size
        self._length = length
        if length >= _VALUE_CAP:
            self._widen()
        else:
            size = self._size
            self._keys[:size] = (
                self._values[:size] * _STAMP_MOD + self._stamps[:size]
            )

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two summaries of disjoint sub-streams (mergeability).

        The classical mergeable-summaries construction (Agarwal et al.):
        each item's merged estimate adds its per-summary estimates, where
        an item untracked by a full summary contributes that summary's
        minimum counter (an upper bound on its true count there); then
        only the ``k`` largest merged counters are kept.  The merged
        summary still brackets every item's true count:
        ``true <= estimate <= true + L_total / k``.  Both summaries must
        have the same ``k``.
        """
        if not isinstance(other, SpaceSaving):
            raise ValueError(
                f"cannot merge SpaceSaving with {type(other).__name__}"
            )
        if self.k != other.k:
            raise ValueError(f"cannot merge k={self.k} with k={other.k}")
        mine_counters = self._counters
        their_counters = other._counters
        mine_overs = self._overestimates
        their_overs = other._overestimates
        # A summary that never filled up tracks every item it saw, so an
        # untracked item's true count there is 0, not the minimum counter.
        floor_self = (
            min(mine_counters.values()) if len(mine_counters) >= self.k else 0
        )
        floor_other = (
            min(their_counters.values())
            if len(their_counters) >= other.k
            else 0
        )
        combined: Dict[int, int] = {}
        overestimates: Dict[int, int] = {}
        for item in set(mine_counters) | set(their_counters):
            mine = mine_counters.get(item)
            theirs = their_counters.get(item)
            estimate = (mine if mine is not None else floor_self) + (
                theirs if theirs is not None else floor_other
            )
            certified = 0
            if mine is not None:
                certified += mine - mine_overs.get(item, 0)
            if theirs is not None:
                certified += theirs - their_overs.get(item, 0)
            combined[item] = estimate
            overestimates[item] = estimate - certified
        if len(combined) > self.k:
            kept = sorted(combined, key=combined.__getitem__, reverse=True)[
                : self.k
            ]
            combined = {item: combined[item] for item in kept}
            overestimates = {item: overestimates[item] for item in kept}
        merged = SpaceSaving(self.k)
        merged._load(combined, overestimates, self._length + other._length)
        return merged

    def split(self, n_shards: int) -> List["SpaceSaving"]:
        """``n_shards`` empty same-``k`` shard summaries (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._length:
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        """Three words per counter (item, count, overestimate) + length."""
        return 3 * self._size + 1
