"""CountSketch (Charikar, Chen, Farach-Colton 2002) — references [14, 15].

A ``rows x width`` grid with a bucket hash and a ±1 sign hash per row.
Point queries return the *median* over rows of the signed cell values —
an unbiased estimator with error ``O(L2-norm / sqrt(width))`` per row,
boosted by the median.  Supports turnstile updates.
"""

from __future__ import annotations

import copy
import random
from typing import List, Optional

import numpy as np

from repro.sketch.hashing import KWiseHash, KWiseHashStack, random_kwise
from repro.streams.edge import StreamItem, insert_signs
from repro.streams.stream import EdgeStream


class CountSketch:
    """Turnstile frequency sketch with unbiased point queries.

    Args:
        width: buckets per row.
        rows: number of rows (median boosting); odd values recommended.
        seed: hash seed.
    """

    #: Linear sketch: same-seed shards merge bit-identically for any
    #: stream split (see :mod:`repro.engine.protocol`).
    shard_routing = "any"

    def __init__(self, width: int, rows: int = 5, seed: int | None = None) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        self.width = width
        self.rows = rows
        rng = random.Random(seed)
        self._bucket_hashes: List[KWiseHash] = [
            random_kwise(2, width, rng) for _ in range(rows)
        ]
        self._sign_hashes: List[KWiseHash] = [
            random_kwise(2, 2, rng) for _ in range(rows)
        ]
        self._table = np.zeros((rows, width), dtype=np.int64)
        self._build_stacks()

    def _build_stacks(self) -> None:
        """(Re)build the fused-kernel hash stacks from the per-row hashes.

        Buckets and signs for all rows come from one broadcast Horner
        evaluation each; ``_row_offsets`` turns per-row buckets into flat
        indices of the C-contiguous table for a single scatter-add.
        """
        self._bucket_stack = KWiseHashStack(self._bucket_hashes)
        self._sign_stack = KWiseHashStack(self._sign_hashes)
        self._row_offsets = (
            np.arange(self.rows, dtype=np.int64)[:, np.newaxis] * self.width
        )

    def _sign(self, row: int, item: int) -> int:
        return 1 if self._sign_hashes[row](item) == 1 else -1

    def update(self, item: int, delta: int = 1) -> None:
        """Apply ``count[item] += delta``."""
        for row_index in range(self.rows):
            bucket = self._bucket_hashes[row_index](item)
            self._table[row_index, bucket] += self._sign(row_index, item) * delta

    def update_batch(self, items: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a column of signed updates with one fused kernel.

        Deltas are first netted per distinct item (cells are commutative
        ``int64`` sums, so netting cannot change the final table), the
        distinct items are hashed for *all* rows in one stacked Horner
        evaluation, and the ``rows x unique`` signed contributions are
        scattered with a single flat ``np.add.at``.  Bit-identical to
        calling :meth:`update` item by item.
        """
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if len(items) == 0:
            return
        unique, inverse = np.unique(items, return_inverse=True)
        net = np.zeros(len(unique), dtype=np.int64)
        np.add.at(net, inverse, deltas)
        buckets = self._bucket_stack.batch_rows(unique)
        signs = 2 * self._sign_stack.batch_rows(unique) - 1
        np.add.at(
            self._table.reshape(-1),
            (buckets + self._row_offsets).reshape(-1),
            (signs * net[np.newaxis, :]).reshape(-1),
        )

    def process_item(self, item: StreamItem) -> None:
        """Adapter: A-vertex is the item, sign is the delta."""
        self.update(item.edge.a, item.sign)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Column adapter: A-vertices are the items, signs the deltas."""
        a = np.ascontiguousarray(a, dtype=np.int64)
        if sign is None:
            sign = insert_signs(len(a))
        self.update_batch(a, sign)

    def process(self, stream: EdgeStream) -> "CountSketch":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "CountSketch":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        sketch stays queryable, so finalize returns the sketch itself."""
        return self

    def estimate(self, item: int) -> int:
        """Median-of-rows point query (unbiased, can under- or overshoot)."""
        return int(self.estimate_batch(np.array([item], dtype=np.int64))[0])

    def estimate_batch(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate` over a column of items.

        All rows' buckets and signs come from the stacked hash kernel;
        the per-item median over rows is taken with one sort along the
        row axis.  For odd ``rows`` the median is the exact middle
        ``int64``; for even ``rows`` the two middle values are averaged
        and rounded exactly as ``round(statistics.median(...))`` does.
        """
        items = np.asarray(items, dtype=np.int64)
        if len(items) == 0:
            return np.zeros(0, dtype=np.int64)
        buckets = self._bucket_stack.batch_rows(items)
        signs = 2 * self._sign_stack.batch_rows(items) - 1
        values = np.sort(signs * self._table[np.arange(self.rows)[:, None], buckets], axis=0)
        mid = self.rows // 2
        if self.rows % 2:
            return values[mid].astype(np.int64)
        low, high = values[mid - 1], values[mid]
        return np.array(
            [round((int(l) + int(h)) / 2) for l, h in zip(low, high)],
            dtype=np.int64,
        )

    def shares_hashes_with(self, other: "CountSketch") -> bool:
        """True when both sketches use identical bucket and sign hashes
        (a precondition for merging)."""
        if (self.width, self.rows) != (other.width, other.rows):
            return False
        return all(
            mine.coefficients == theirs.coefficients
            for mine, theirs in zip(
                self._bucket_hashes + self._sign_hashes,
                other._bucket_hashes + other._sign_hashes,
            )
        )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Cell-wise sum of two sketches over disjoint sub-streams.

        Valid only when both sketches were built with the same seed
        (identical bucket and sign hashes); the table is linear, so
        sharded-then-merged equals single-pass cell for cell.
        """
        if not isinstance(other, CountSketch):
            raise ValueError(
                f"cannot merge CountSketch with {type(other).__name__}"
            )
        if not self.shares_hashes_with(other):
            raise ValueError(
                "sketches use different hash functions; construct both "
                "with the same seed to merge"
            )
        merged = CountSketch.__new__(CountSketch)
        merged.width = self.width
        merged.rows = self.rows
        merged._bucket_hashes = self._bucket_hashes
        merged._sign_hashes = self._sign_hashes
        merged._table = self._table + other._table
        merged._bucket_stack = self._bucket_stack
        merged._sign_stack = self._sign_stack
        merged._row_offsets = self._row_offsets
        return merged

    def split(self, n_shards: int) -> List["CountSketch"]:
        """``n_shards`` zeroed same-hash shard sketches (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._table.any():
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        """All counters plus two hashes per row."""
        hash_words = sum(h.space_words() for h in self._bucket_hashes) + sum(
            h.space_words() for h in self._sign_hashes
        )
        return self.rows * self.width + hash_words
