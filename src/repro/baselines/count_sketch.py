"""CountSketch (Charikar, Chen, Farach-Colton 2002) — references [14, 15].

A ``rows x width`` grid with a bucket hash and a ±1 sign hash per row.
Point queries return the *median* over rows of the signed cell values —
an unbiased estimator with error ``O(L2-norm / sqrt(width))`` per row,
boosted by the median.  Supports turnstile updates.
"""

from __future__ import annotations

import copy
import math
import random
import statistics
from typing import List, Optional

import numpy as np

from repro.sketch.hashing import KWiseHash, random_kwise
from repro.streams.edge import StreamItem
from repro.streams.stream import EdgeStream


class CountSketch:
    """Turnstile frequency sketch with unbiased point queries.

    Args:
        width: buckets per row.
        rows: number of rows (median boosting); odd values recommended.
        seed: hash seed.
    """

    #: Linear sketch: same-seed shards merge bit-identically for any
    #: stream split (see :mod:`repro.engine.protocol`).
    shard_routing = "any"

    def __init__(self, width: int, rows: int = 5, seed: int | None = None) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        self.width = width
        self.rows = rows
        rng = random.Random(seed)
        self._bucket_hashes: List[KWiseHash] = [
            random_kwise(2, width, rng) for _ in range(rows)
        ]
        self._sign_hashes: List[KWiseHash] = [
            random_kwise(2, 2, rng) for _ in range(rows)
        ]
        self._table = np.zeros((rows, width), dtype=np.int64)

    def _sign(self, row: int, item: int) -> int:
        return 1 if self._sign_hashes[row](item) == 1 else -1

    def update(self, item: int, delta: int = 1) -> None:
        """Apply ``count[item] += delta``."""
        for row_index in range(self.rows):
            bucket = self._bucket_hashes[row_index](item)
            self._table[row_index, bucket] += self._sign(row_index, item) * delta

    def update_batch(self, items: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a column of signed updates: one scatter-add per row.

        Cells are commutative sums, so the final table is bit-identical
        to calling :meth:`update` item by item.
        """
        for row_index in range(self.rows):
            buckets = self._bucket_hashes[row_index].batch(items)
            signs = 2 * self._sign_hashes[row_index].batch(items) - 1
            np.add.at(self._table[row_index], buckets, signs * deltas)

    def process_item(self, item: StreamItem) -> None:
        """Adapter: A-vertex is the item, sign is the delta."""
        self.update(item.edge.a, item.sign)

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Column adapter: A-vertices are the items, signs the deltas."""
        a = np.ascontiguousarray(a, dtype=np.int64)
        if sign is None:
            sign = np.ones(len(a), dtype=np.int64)
        self.update_batch(a, sign)

    def process(self, stream: EdgeStream) -> "CountSketch":
        for item in stream:
            self.process_item(item)
        return self

    def finalize(self) -> "CountSketch":
        """Engine hook (:class:`repro.engine.StreamProcessor`): the
        sketch stays queryable, so finalize returns the sketch itself."""
        return self

    def estimate(self, item: int) -> int:
        """Median-of-rows point query (unbiased, can under- or overshoot)."""
        values = []
        for row_index in range(self.rows):
            bucket = self._bucket_hashes[row_index](item)
            values.append(
                self._sign(row_index, item) * int(self._table[row_index, bucket])
            )
        return round(statistics.median(values))

    def shares_hashes_with(self, other: "CountSketch") -> bool:
        """True when both sketches use identical bucket and sign hashes
        (a precondition for merging)."""
        if (self.width, self.rows) != (other.width, other.rows):
            return False
        return all(
            mine.coefficients == theirs.coefficients
            for mine, theirs in zip(
                self._bucket_hashes + self._sign_hashes,
                other._bucket_hashes + other._sign_hashes,
            )
        )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Cell-wise sum of two sketches over disjoint sub-streams.

        Valid only when both sketches were built with the same seed
        (identical bucket and sign hashes); the table is linear, so
        sharded-then-merged equals single-pass cell for cell.
        """
        if not isinstance(other, CountSketch):
            raise ValueError(
                f"cannot merge CountSketch with {type(other).__name__}"
            )
        if not self.shares_hashes_with(other):
            raise ValueError(
                "sketches use different hash functions; construct both "
                "with the same seed to merge"
            )
        merged = CountSketch.__new__(CountSketch)
        merged.width = self.width
        merged.rows = self.rows
        merged._bucket_hashes = self._bucket_hashes
        merged._sign_hashes = self._sign_hashes
        merged._table = self._table + other._table
        return merged

    def split(self, n_shards: int) -> List["CountSketch"]:
        """``n_shards`` zeroed same-hash shard sketches (sharded runs)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if self._table.any():
            raise RuntimeError("split() must be called before processing")
        return [copy.deepcopy(self) for _ in range(n_shards)]

    def space_words(self) -> int:
        """All counters plus two hashes per row."""
        hash_words = sum(h.space_words() for h in self._bucket_hashes) + sum(
            h.space_words() for h in self._sign_hashes
        )
        return self.rows * self.width + hash_words
