"""Classical frequent-elements baselines (without witnesses) and naive
witness-collecting baselines.

The paper's §1.3 contrasts FEwW with the classical FE literature: FE
algorithms use space ``~ m/d`` (rarer threshold → *more* space), while
FEwW trivially needs ``Ω(d/α)`` (higher threshold → more space, because
witnesses must be stored).  This package implements the four classical
algorithms the paper cites — Misra–Gries [37], SpaceSaving [35/36],
Count-Min [17] and CountSketch [15] — plus two naive witness baselines
(:class:`FullStorage`, :class:`FirstKWitnessCollector`) so benchmark
E10 can reproduce that contrast quantitatively.

All baselines consume (item, witness) streams via the same
``process_item`` interface as the core algorithms (witnesses are simply
ignored by the witness-free sketches) and are space-metered.
"""

from repro.baselines.misra_gries import MisraGries
from repro.baselines.mg_witness import MisraGriesWithWitnesses
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.naive import FirstKWitnessCollector, FullStorage

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "FirstKWitnessCollector",
    "FullStorage",
    "MisraGries",
    "MisraGriesWithWitnesses",
    "SpaceSaving",
]
