"""Windowed monitoring: per-hour heavy items with witnesses.

A monitoring deployment wants "which row was hot *this window*, and who
touched it" — not all-time frequency.  The tumbling-window extension
restarts FEwW each window and retains each window's verdict.  This
example also round-trips the workload through the stream file format,
the way an experiment would archive its input.

Run:  python examples/windowed_monitoring.py
"""

import tempfile
from pathlib import Path

from repro.core.windowed import TumblingWindowFEwW
from repro.streams import dump_stream, load_stream
from repro.streams.edge import Edge
from repro.streams.stream import stream_from_edges


def make_shifting_workload():
    """Three 'hours' of activity; a different row dominates each."""
    edges = []
    witness = 0
    for hour, hot_row in enumerate((3, 7, 11)):
        # the hot row gets 30 distinct users this hour
        for _ in range(30):
            edges.append(Edge(hot_row, witness)); witness += 1
        # background: 20 rows touched twice each
        for row in range(20, 40):
            for _ in range(2):
                edges.append(Edge(row, witness)); witness += 1
    return stream_from_edges(edges, n=64, m=witness), 70


def main() -> None:
    stream, window = make_shifting_workload()

    # Archive the workload as a reproducible artifact and reload it.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.feww"
        dump_stream(stream, path)
        stream = load_stream(path)
        print(f"workload archived to and reloaded from {path.name} "
              f"({len(stream)} updates)")

    monitor = TumblingWindowFEwW(
        n=stream.n, d=30, alpha=2, window=window, seed=1
    ).process(stream)
    monitor.flush()

    print(f"\n{len(monitor.completed_windows())} windows of {window} updates:")
    for result in monitor.completed_windows():
        if result.found:
            neighbourhood = result.neighbourhood
            print(f"  window {result.window_index}: row {neighbourhood.vertex} "
                  f"hot with {neighbourhood.size} witnesses "
                  f"(e.g. users {sorted(neighbourhood.witnesses)[:4]})")
        else:
            print(f"  window {result.window_index}: no row reached d=30")

    winners = [r.neighbourhood.vertex for r in monitor.completed_windows() if r.found]
    assert winners == [3, 7, 11]
    print("\nverification: each window's hot row detected in order — OK")


if __name__ == "__main__":
    main()
