"""Star Detection: find the influencer AND their followers.

The paper's second motivating example: in a stream of friendship
updates, a frequent-elements algorithm can spot a high-degree node but
not its neighbours.  Star Detection (Lemma 3.3) reports the node of
(approximately) maximum degree together with a proportional share of
its neighbourhood, by running FEwW for geometric guesses of the unknown
maximum degree.

Run:  python examples/social_influencer.py
"""

from repro import StarDetection, bipartite_double_cover, social_network_stream


def main() -> None:
    edges, n_users = social_network_stream(
        n_users=500, influencer=17, n_followers=120, n_background=1500, seed=5
    )
    print(f"friendship stream: {len(edges)} edges over {n_users} users")

    detector = StarDetection(n_users, alpha=2, eps=0.5, seed=6)
    detector.process_undirected(edges)
    result = detector.result()

    cover = bipartite_double_cover(edges, n_users)
    true_degree = cover.degree_of(result.vertex)
    print(f"\ndetected influencer: user {result.vertex} "
          f"(true degree {true_degree})")
    print(f"followers reported: {result.size} "
          f"(guarantee: >= Delta/{detector.approximation_ratio():.1f} "
          f"= {true_degree / detector.approximation_ratio():.0f})")
    print(f"winning degree guess: {result.winning_guess} "
          f"(out of ladder {detector.guesses[:8]}...)")
    print(f"sample followers: {sorted(result.neighbourhood.witnesses)[:12]}")
    print(f"space: {detector.space_words()} words across "
          f"{len(detector.guesses)} parallel FEwW runs")

    assert result.vertex == 17
    assert result.neighbourhood.witnesses <= cover.neighbours_of(17)
    print("\nverification: centre and all followers confirmed — OK")


if __name__ == "__main__":
    main()
