"""DoS detection: the paper's router-log motivating example.

An Internet router logs (destination IP, source IP) pairs.  A classical
frequent-elements algorithm can name the victim of a denial-of-service
attack, but not *who* attacked.  FEwW reports the victim together with
attacking source addresses.

Run:  python examples/dos_detection.py
"""

from repro import InsertionOnlyFEwW, dos_attack_log, log_records_to_stream
from repro.baselines import MisraGries


def main() -> None:
    # Synthetic router log: 30% of traffic targets one victim from
    # distinct spoofed sources.
    records = dos_attack_log(n_hosts=200, n_records=5000, seed=3)
    stream, items, witnesses = log_records_to_stream(records)
    d = stream.max_degree()
    print(f"log: {len(records)} packets, {stream.n} destinations, "
          f"busiest destination receives {d} distinct sources")

    # --- Classical baseline: victim only, no sources -----------------
    summary = MisraGries(50).process(stream)
    (victim_id, _), *_ = sorted(
        summary.candidates(d // 2), key=lambda pair: -pair[1]
    )
    print(f"\nMisra-Gries identifies the victim: {items.decode(victim_id)}")
    print("Misra-Gries attacking sources:    (none — counters only)")

    # --- FEwW: victim AND sources ------------------------------------
    algorithm = InsertionOnlyFEwW(stream.n, d, alpha=2, seed=4).process(stream)
    result = algorithm.result()
    victim = items.decode(result.vertex)
    sources = sorted(witnesses.decode(b) for b in result.witnesses)
    print(f"\nFEwW identifies the victim:       {victim}")
    print(f"FEwW reports {len(sources)} attacking sources "
          f"(>= d/alpha = {d // 2}):")
    for source in sources[:8]:
        print(f"  {source}")
    print(f"  ... and {len(sources) - 8} more")
    print(f"\nFEwW space: {algorithm.space_words()} words "
          f"(vs storing all {len(stream)} log entries)")


if __name__ == "__main__":
    main()
