"""The declarative Pipeline API: one JSON spec, one reproducible run.

Every run in this library — CLI, benchmarks, your scripts — is an
assignment of four coordinates: *source* x *window* x *backend* x
*processors*.  ``repro.pipeline`` makes that assignment a first-class,
validated, serializable object:

1. build a pipeline fluently, or straight from a JSON dict,
2. round-trip it through ``to_dict``/``from_dict`` (the spec *is* the
   experiment artifact — commit it next to your results),
3. run it and get a typed, JSON-serializable ``PipelineResult``,
4. and let validation catch conflicting coordinates eagerly — every
   problem at once, before anything streams.

Run:  python examples/pipeline_spec.py
"""

import json

from repro.pipeline import Pipeline, PipelineValidationError

# The spec a user would keep in a job.json file: the adversarial CLI
# workload (a planted heavy vertex among near-threshold decoys),
# Algorithm 2, a tumbling window, sharded across 2 workers.
JOB = {
    "source": {
        "kind": "generator",
        "generator": "adversarial",
        "params": {"n": 128, "m": 2048, "d": 64, "seed": 5},
    },
    "processors": [
        {
            "name": "insertion-only",
            "label": "alg2",
            "params": {"n": 128, "d": 64, "alpha": 2},
        }
    ],
    "window": {"policy": "tumbling", "window": 1024, "seed": 5},
    "execution": {"backend": "sharded", "workers": 2},
}


def main() -> None:
    pipeline = Pipeline.from_dict(JOB)

    # The spec round-trips exactly: what you archive is what runs.
    assert Pipeline.from_dict(pipeline.to_dict()) == pipeline
    print("job spec (canonical form):")
    print(json.dumps(pipeline.to_dict(), indent=2))

    result = pipeline.run()
    report = result.report
    print(f"\nran {report.n_updates} updates on the {report.backend!r} "
          f"backend x{report.workers} (routing {report.routing!r}) at "
          f"{report.updates_per_s / 1e3:.0f} k-upd/s")
    for window in result["alg2"]:
        verdict = (
            f"vertex {window.value.vertex} with {window.value.size} witnesses"
            if window.found else "no qualifying vertex"
        )
        print(f"  window {window.window_index} "
              f"[{window.start_update}, {window.end_update}): {verdict}")

    # The whole result is JSON too — log it, diff it, archive it.
    payload = json.dumps(result.to_dict(), indent=2)
    print(f"\nresult serializes to {len(payload)} bytes of JSON")

    # A fluent builder produces the same pipeline as the dict above.
    fluent = (
        Pipeline.builder()
        .generator("adversarial", n=128, m=2048, d=64, seed=5)
        .processor("insertion-only", label="alg2", n=128, d=64, alpha=2)
        .window("tumbling", 1024, seed=5)
        .sharded(2)
        .build()
    )
    assert fluent == pipeline
    print("fluent builder and JSON spec agree")

    # Validation is eager and total: a spec full of conflicts reports
    # every one of them at construction time, nothing runs.
    try:
        Pipeline.from_dict({
            "source": {"kind": "generator", "generator": "zipff",
                       "mmap": True},
            "processors": [{"name": "insertion-only",
                            "params": {"n": 64, "d": 8, "alphas": 2}}],
            "execution": {"backend": "serial", "workers": 4},
        })
    except PipelineValidationError as error:
        print(f"\nconflicting spec rejected with "
              f"{len(error.diagnostics)} diagnostics:")
        for diagnostic in error.diagnostics:
            print(f"  - {diagnostic}")


if __name__ == "__main__":
    main()
