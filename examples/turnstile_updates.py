"""Insertion-deletion streams: witnesses that survive retractions.

A database workload where most activity is transient: rows are touched
and the touches are later rolled back, except for one persistently hot
row.  An insertion-only algorithm would fill its reservoir with noise
that no longer exists; the paper's Algorithm 3 (ℓ₀-sampler based)
samples only from the *surviving* edges.

Run:  python examples/turnstile_updates.py
"""

from repro import (
    GeneratorConfig,
    InsertionDeletionFEwW,
    deletion_churn_stream,
    verify_neighbourhood,
)


def main() -> None:
    n, m, d = 64, 128, 32
    stream = deletion_churn_stream(
        GeneratorConfig(n=n, m=m, seed=8), star_degree=d, churn_edges=1500
    )
    stats = stream.stats()
    print(f"turnstile stream: {stats.n_inserts} inserts, "
          f"{stats.n_deletes} deletes, {stats.n_edges_final} surviving edges")
    print(f"survivors all belong to vertex {stats.max_degree_vertex} "
          f"(degree {stats.max_degree})")

    algorithm = InsertionDeletionFEwW(n, m, d, alpha=2, seed=9, scale=0.3)
    algorithm.process(stream)
    result = algorithm.result()

    print(f"\nreported vertex: {result.vertex}")
    print(f"witnesses: {result.size} (threshold d/alpha = {d // 2})")
    verify_neighbourhood(result, stream, d, 2)
    print("verification: every witness survives all deletions — OK")
    print(f"space (accounted): {algorithm.space_words()} words")
    print("\nbreakdown:")
    print(algorithm.space_breakdown())


if __name__ == "__main__":
    main()
