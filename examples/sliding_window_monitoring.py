"""Sliding-window monitoring: "who is hot over the last W updates?".

A tumbling window answers per completed hour; live monitoring wants the
answer over the *trailing* window at any moment.  The engine's
smooth-histogram sliding policy (``SlidingPolicy``) keeps
``ceil(1/ratio) + 1`` bucket summaries and merges the trailing buckets
at query time, covering the last ``L`` updates with
``W <= L <= (1 + ratio) * W`` — a (1+ε)-approximate window at a
fraction of the cost of one instance per offset.

The whole run is assembled through the declarative Pipeline API: an
in-memory source, Algorithm 2 resolved by registry name, the sliding
window policy, one fanout pass — plus ``probe_every``, which snapshots
the windowed answer *mid-stream* (``WindowedProcessor.query()``, the
smooth histogram's query-at-any-point) once per phase.

The workload shifts its hot row over three phases; each probe must see
the phase that just ended, the final sliding answer must reflect only
the *latest* phase, while a whole-stream run still reports the
all-time heavy row.

Run:  python examples/sliding_window_monitoring.py
"""

import numpy as np

from repro.engine import SlidingPolicy
from repro.pipeline import Pipeline
from repro.streams.columnar import ColumnarEdgeStream

N_ROWS = 64
PHASE = 600
HOT_DEGREE = 200
D = 120


def make_shifting_workload():
    """Three phases; a different row dominates each (distinct users)."""
    rng = np.random.default_rng(11)
    a_parts, witness = [], 0
    for hot_row in (3, 7, 11):
        a = np.full(PHASE, hot_row, dtype=np.int64)
        background = rng.integers(20, N_ROWS, size=PHASE - HOT_DEGREE)
        a[: len(background)] = background
        rng.shuffle(a)
        a_parts.append(a)
    a = np.concatenate(a_parts)
    b = np.arange(len(a), dtype=np.int64)  # every touch a distinct user
    return ColumnarEdgeStream(a, b, n=N_ROWS, m=len(a), validate=False)


def main() -> None:
    stream = make_shifting_workload()
    policy = SlidingPolicy(window=PHASE, bucket_ratio=0.25)
    print(f"{len(stream)} updates in 3 phases; sliding window of {PHASE} "
          f"updates via {policy.retained} smooth-histogram buckets of "
          f"{policy.bucket}")

    pipeline = (
        Pipeline.builder()
        .memory(stream)
        .chunk_size(150)  # aligns probe quantization with the phases
        .processor("insertion-only", label="sliding", n=N_ROWS, d=D, alpha=2)
        .window("sliding", PHASE, bucket_ratio=0.25, seed=1)
        .build()
    )
    # One probe per phase: the mid-stream sliding answer at each point.
    result = pipeline.run(probe_every=PHASE)

    print("\nmid-stream probes (query-at-any-point):")
    for probe in result.probes:
        answer = probe.answers["sliding"]
        hot = answer.value
        label = f"row {hot.vertex}" if hot is not None else "none"
        print(f"  at update {probe.position}: covered "
              f"[{answer.start_update}, {answer.end_update}) -> {label}")

    sliding = result["sliding"]
    print(f"\nsliding answer covers updates [{sliding.start_update}, "
          f"{sliding.end_update}) — span {sliding.span} "
          f"(bound: {PHASE} <= span <= {PHASE + policy.bucket})")
    hot = sliding.value
    print(f"  hot row now: {hot.vertex} with {hot.size} recent users")
    # For contrast, a whole-stream (unwindowed) pipeline over the same
    # source still reports the all-time heavy row.
    whole = (
        Pipeline.builder()
        .memory(stream)
        .processor("insertion-only", label="whole", n=N_ROWS, d=D, alpha=2,
                   seed=2)
        .build()
        .run()["whole"]
    )
    print(f"  whole-stream answer (for contrast): row {whole.vertex}")

    assert PHASE <= sliding.span <= PHASE + policy.bucket
    assert hot.vertex == 11, "sliding window should see only the last phase"
    # Witnesses are arrival indices, so "recent" is checkable directly.
    assert min(hot.witnesses) >= sliding.start_update
    # Each probe's covered span must end exactly at the probe position —
    # the query-at-any-point property.
    assert [probe.position for probe in result.probes] \
        == [PHASE, 2 * PHASE, 3 * PHASE]
    assert all(
        probe.answers["sliding"].end_update == probe.position
        for probe in result.probes
    )
    print("\nsliding verdict reflects only the recent hot row — OK")


if __name__ == "__main__":
    main()
