"""Distributed monitoring: mergeable summaries and protocol footprints.

Two views of the same distributed-stream scenario (four sites each see
a shard of the traffic):

1. *witness-free*: each site keeps a Misra-Gries / Count-Min summary;
   the coordinator merges them and gets frequency estimates for the
   union stream — but still zero witnesses;
2. *one-way FEwW*: the sites relay Algorithm 2's memory state site to
   site (the paper's §4 protocol view) and the last site outputs the
   heavy item WITH witnesses; the per-hop message is measured.

Run:  python examples/distributed_merge.py
"""

from repro.baselines import CountMinSketch, MisraGries
from repro.comm import run_streaming_protocol, split_among_parties
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, zipf_frequency_stream

N_SITES = 4
N, RECORDS = 256, 4000


def main() -> None:
    config = GeneratorConfig(n=N, m=RECORDS, seed=9)
    stream = zipf_frequency_stream(config, n_records=RECORDS, exponent=1.4)
    shards = split_among_parties(stream, N_SITES)
    d = stream.max_degree()
    print(f"{RECORDS} records sharded over {N_SITES} sites; "
          f"heaviest item has {d} distinct witnesses")

    # --- 1. mergeable witness-free summaries --------------------------
    site_summaries = [MisraGries(48).process(shard) for shard in shards]
    merged = site_summaries[0]
    for summary in site_summaries[1:]:
        merged = merged.merge(summary)
    heavy, estimate = max(merged.candidates(d // 2), key=lambda pair: pair[1])
    print(f"\nmerged Misra-Gries: item {heavy} with estimate >= {estimate} "
          f"(true {stream.degree_of(heavy)}); witnesses held: 0")

    site_sketches = [
        CountMinSketch(0.01, 0.01, seed=5).process(shard) for shard in shards
    ]
    merged_sketch = site_sketches[0]
    for sketch in site_sketches[1:]:
        merged_sketch = merged_sketch.merge(sketch)
    print(f"merged Count-Min estimate for item {heavy}: "
          f"{merged_sketch.estimate(heavy)} (never underestimates)")

    # --- 2. one-way FEwW protocol --------------------------------------
    algorithm, log = run_streaming_protocol(
        InsertionOnlyFEwW(N, d, 2, seed=6), shards
    )
    result = algorithm.result()
    print(f"\nFEwW relay: item {result.vertex} with {result.size} witnesses "
          f"(threshold d/2 = {d // 2})")
    print(f"per-hop messages (words): "
          f"{[words for _, _, words in log.messages]}")
    print(f"max hop = {log.max_message_words()} words vs "
          f"{2 * len(stream.final_edges())} words to ship all edges")

    assert result.vertex == heavy == 0
    print("\nverification: all three views agree on the heavy item — OK")


if __name__ == "__main__":
    main()
