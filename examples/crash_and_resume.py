"""Fault tolerance: surviving crashes without losing the answer.

Three acts over the same persisted stream:

1. *crash*: a checkpointed single-process run is killed mid-stream by
   a deterministic injected fault, leaving snapshots behind;
2. *resume*: the run is rebuilt from the checkpoint directory and
   finishes from the saved offset — the final sketch is bit-identical
   to an uninterrupted run;
3. *retry*: a sharded run loses a worker to SIGKILL and transparently
   re-runs just that shard, again to bit-identical answers.

Run:  python examples/crash_and_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.baselines import CountMinSketch
from repro.engine import FanoutRunner, FaultPlan, ShardedRunner
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.persist import dump_stream

N, UPDATES, CHUNK = 64, 4000, 256


def fresh_sketch() -> CountMinSketch:
    return CountMinSketch(0.01, 0.01, seed=5)


def main() -> None:
    rng = np.random.default_rng(17)
    stream = ColumnarEdgeStream(
        rng.integers(0, N, size=UPDATES),
        np.arange(UPDATES, dtype=np.int64),
        n=N,
        m=UPDATES,
    )

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "traffic.npz"
        dump_stream(stream, path, format="v2")
        reference = fresh_sketch()
        reference.process_batch(stream.a, stream.b, stream.sign)

        # --- 1. a checkpointed run dies mid-stream --------------------
        ckpt = Path(scratch) / "ckpt"
        doomed = FanoutRunner(
            {"cm": fresh_sketch()},
            chunk_size=CHUNK,
            checkpoint_dir=ckpt,
            checkpoint_every=4,
            fault_plan=FaultPlan.read_error(worker=0, chunk=10),
        )
        try:
            doomed.run(str(path))
        except OSError as error:
            print(f"run crashed mid-stream: {error}")
        snapshots = sorted(p.name for p in ckpt.glob("*.manifest.json"))
        print(f"checkpoints left behind: {snapshots}")

        # --- 2. resume from the snapshots -----------------------------
        resumed = FanoutRunner.resume(ckpt)
        results = resumed.run()
        identical = np.array_equal(results["cm"]._table, reference._table)
        print(f"resumed from the saved offset; bit-identical to an "
              f"uninterrupted run: {identical}")

        # --- 3. sharded retry after a killed worker -------------------
        runner = ShardedRunner(
            {"cm": fresh_sketch()},
            n_workers=2,
            chunk_size=CHUNK,
            retries=2,
            on_failure="retry",
            fault_plan=FaultPlan.kill(worker=0, chunk=3),
        )
        sharded = runner.run(str(path))
        identical = np.array_equal(sharded["cm"]._table, reference._table)
        print(f"worker 0 was SIGKILLed and retried "
              f"({runner.retries_used} retry); recovered answers are "
              f"bit-identical: {identical}")

        if identical:
            print("crash, resume and retry all preserved the exact answer")


if __name__ == "__main__":
    main()
