"""The paper's lower-bound machinery, run end to end.

Reproduces the paper's three figures as executable constructions:

* Figure 1 — the Bit-Vector-Learning(3, 4, 5) example instance;
* Figure 2 — its graph encoding, where each witness reveals one bit;
* Figure 3 — the Augmented-Matrix-Row-Index(4, 6, 2) example instance,
  solved by the Lemma 6.3 protocol.

Run:  python examples/lower_bound_reductions.py
"""

from repro.comm import (
    bvl_graph_stream,
    decode_witness,
    figure1_instance,
    figure3_instance,
    solve_amri_via_feww,
    solve_bvl_via_feww,
    trivial_bvl_protocol,
)


def show_figure1() -> None:
    instance = figure1_instance()
    names = ("Alice", "Bob", "Charlie")
    print("Figure 1 — Bit-Vector-Learning(3, 4, 5)")
    for party, name in enumerate(names):
        holdings = ", ".join(
            f"Y^{j + 1}_{party + 1}={''.join(map(str, bits))}"
            for j, bits in sorted(instance.strings[party].items())
        )
        print(f"  {name}: X_{party + 1}="
              f"{{{', '.join(str(j + 1) for j in instance.index_sets[party])}}}"
              f"  {holdings}")
    for j in range(instance.n):
        print(f"  Z_{j + 1} = {''.join(map(str, instance.z_string(j)))}")


def show_figure2() -> None:
    instance = figure1_instance()
    stream = bvl_graph_stream(instance)
    print("\nFigure 2 — graph encoding (party blocks of 2k B-vertices; "
          "B-vertex parity = the bit)")
    deepest = instance.index_sets[-1][0]
    print(f"  Delta = k*p = {instance.k * instance.p}, achieved by "
          f"a_{deepest + 1} (the element of X_p)")
    result = solve_bvl_via_feww(instance, seed=11)
    print(f"  FEwW protocol output: index {result.index + 1}, "
          f"{result.n_bits} bits learned, all correct: {result.correct}")
    bits = ", ".join(
        f"Y^{result.index + 1}_{party + 1}[{position + 1}]={bit}"
        for party, position, bit in result.learned_bits[:6]
    )
    print(f"  decoded bits: {bits}, ...")
    index, trivial_bits = trivial_bvl_protocol(instance)
    print(f"  trivial zero-communication protocol: index {index + 1}, "
          f"only {len(trivial_bits)} bits (needs 1.01k = 6) — the gap the "
          f"lower bound formalises")


def show_figure3() -> None:
    instance = figure3_instance()
    print("\nFigure 3 — Augmented-Matrix-Row-Index(4, 6, 2)")
    for row_index, row in enumerate(instance.matrix):
        marker = "  <- row J (unknown to Bob)" if row_index == instance.target_row else ""
        print(f"  {''.join(map(str, row))}{marker}")
    result = solve_amri_via_feww(
        instance, alpha=1.0, seed=12, repetition_constant=4, scale=0.3
    )
    print(f"  Lemma 6.3 protocol recovers row J = "
          f"{''.join(map(str, result.recovered_row))} "
          f"(correct: {result.correct}, {result.repetitions} repetitions, "
          f"decided by the {'inverted' if result.used_inverted else 'direct'} runs)")
    print(f"  total communication: {result.log.total_words()} words over "
          f"{len(result.log)} messages")


def main() -> None:
    show_figure1()
    show_figure2()
    show_figure3()


if __name__ == "__main__":
    main()
