"""Quickstart: find a frequent element WITH witnesses in a stream.

Plants a heavy vertex in a noisy bipartite stream, runs the paper's
insertion-only algorithm (Algorithm 2) — first item by item, then
through the columnar batch engine (the fast path for production-scale
ingestion), then sharded across worker processes with mergeable
summaries — and verifies the output against ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    ColumnarEdgeStream,
    FanoutRunner,
    GeneratorConfig,
    InsertionOnlyFEwW,
    ShardedRunner,
    TopKFEwW,
    planted_star_graph,
    verify_neighbourhood,
)


def main() -> None:
    n, m = 1000, 2000          # 1000 items, 2000 possible witnesses
    d, alpha = 200, 2          # promise: some item has >= 200 witnesses

    # A stream with one heavy item (vertex 0, degree 200) and noise.
    stream = planted_star_graph(
        GeneratorConfig(n=n, m=m, seed=7), star_degree=d, background_degree=5
    )
    print(f"stream: {stream.stats()}")

    # The paper's Algorithm 2: alpha parallel degree-triggered reservoirs.
    algorithm = InsertionOnlyFEwW(n=n, d=d, alpha=alpha, seed=1)
    algorithm.process(stream)

    result = algorithm.result()
    print(f"reported item: {result.vertex}")
    print(f"witnesses reported: {result.size} (threshold d/alpha = {d // alpha})")
    print(f"first witnesses: {sorted(result.witnesses)[:10]}")
    print(f"space used: {algorithm.space_words()} words")
    print(f"successful parallel runs: {algorithm.successful_runs()}")

    # Every witness is checked against the true final graph.
    verify_neighbourhood(result, stream, d, alpha)
    print("verification: all witnesses are genuine neighbours — OK")

    # The execution engine: the same stream as NumPy columns, streamed
    # once through a FanoutRunner feeding TWO structures per pass — the
    # single-output algorithm and the top-k extension.  Same seed =>
    # bit-identical reservoir state, so the engine's answer matches the
    # per-item run exactly — only much faster.
    columnar = ColumnarEdgeStream.from_edge_stream(stream)
    runner = FanoutRunner({
        "heavy": InsertionOnlyFEwW(n=n, d=d, alpha=alpha, seed=1),
        "topk": TopKFEwW(n=n, d=d, alpha=alpha, k=3, seed=2),
    }, chunk_size=8192)
    answers = runner.run(columnar)          # one pass, both finalized
    batch_result = answers["heavy"]
    assert batch_result.vertex == result.vertex
    assert batch_result.witnesses == result.witnesses
    print(f"engine pass: reported item {batch_result.vertex} "
          f"with {batch_result.size} witnesses — identical to per-item")
    print(f"top-k from the same single pass: "
          f"{[nb.vertex for nb in answers['topk']]}")

    # Sharded parallel execution: the stream is partitioned by vertex
    # hash across worker processes (each running its own engine pass),
    # and the per-shard summaries merge back into one answer — the
    # mergeable-summaries plan that scales ingestion across cores and,
    # with mmap v2 stream files, to workloads larger than RAM.
    sharded = ShardedRunner({
        "heavy": InsertionOnlyFEwW(n=n, d=d, alpha=alpha, seed=1),
    }, n_workers=2, chunk_size=8192)
    sharded_result = sharded.run(columnar)["heavy"]
    verify_neighbourhood(sharded_result, stream, d, alpha)
    print(f"sharded pass (2 workers, routing {sharded.routing()!r}): "
          f"item {sharded_result.vertex} with {sharded_result.size} "
          f"witnesses — verified")


if __name__ == "__main__":
    main()
